//! The metrics registry: lock-free counters and gauges, deterministic
//! log2 histograms, and snapshot/exposition encoders.
//!
//! Everything here is built for two consumers at once:
//!
//! * **Production paths** record through [`Counter`], [`Gauge`] and
//!   [`Histogram`] handles — cheap `Arc`-backed cells that never take a
//!   lock on the hot path (counters shard across cache-padded cells to
//!   dodge write contention).
//! * **Tests and bench bins** read through [`Registry::snapshot`], which
//!   produces a fully deterministic [`MetricsSnapshot`]: entries sorted by
//!   `(name, labels)`, histogram quantiles computed by a fixed bucket-edge
//!   rule, and JSON / Prometheus-text encoders with stable formatting. Under
//!   `VirtualClock` time the recorded values themselves are exact, so whole
//!   snapshots diff byte-for-byte in CI.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independent cells a [`Counter`] stripes its increments over.
/// Sixteen cache lines is enough to make contended increments from the
/// reactor's worker pool effectively private per thread.
const COUNTER_SHARDS: usize = 16;

/// One counter cell on its own cache line, so two shards never share one.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCell(AtomicU64);

/// Returns this thread's stable shard index. Threads are assigned shards
/// round-robin on first use; the assignment is cached in a thread-local so
/// the hot path is one TLS read.
fn shard_index() -> usize {
    use std::cell::Cell;
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    SHARD.with(|slot| {
        let cached = slot.get();
        if cached != usize::MAX {
            return cached;
        }
        let assigned = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
        slot.set(assigned);
        assigned
    })
}

/// A monotonic event counter, sharded across cache-padded cells so
/// concurrent writers do not bounce one line. Cloning is cheap and shares
/// the underlying cells; a counter works standalone or registered in a
/// [`Registry`] (registration just stores another handle to the same
/// cells).
#[derive(Clone, Default)]
pub struct Counter {
    cells: Arc<[PaddedCell; COUNTER_SHARDS]>,
}

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.cells
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes the counter (used by the legacy `TransportStats::reset`
    /// surface; not linearizable against concurrent writers, exactly like
    /// the per-field atomics it replaced).
    pub fn reset(&self) {
        for cell in self.cells.iter() {
            cell.0.store(0, Ordering::Relaxed);
        }
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// An instantaneous level (queue depth, active connections). A single
/// atomic: gauges are read-modify-write by nature, so sharding would buy
/// nothing. Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a detached gauge (not registered anywhere).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, value: i64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Raises the level to `value` if it is higher (running maximum).
    #[inline]
    pub fn set_max(&self, value: i64) {
        self.cell.fetch_max(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

/// Number of buckets in a [`Histogram`]: four exact unit buckets for
/// values `0..4`, then four sub-buckets per power-of-two octave up to
/// `u64::MAX` (62 octaves × 4 + 4 = 252).
pub const HISTOGRAM_BUCKETS: usize = 252;

/// Maps a value to its bucket index. Deterministic and total: every `u64`
/// lands in exactly one of the [`HISTOGRAM_BUCKETS`] buckets.
pub fn bucket_index(value: u64) -> usize {
    if value < 4 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (exp - 2)) & 3) as usize;
        4 * (exp - 2) + 4 + sub
    }
}

/// The smallest value that lands in bucket `index` (inverse of
/// [`bucket_index`] on bucket lower edges).
pub fn bucket_lower(index: usize) -> u64 {
    debug_assert!(index < HISTOGRAM_BUCKETS);
    if index < 4 {
        index as u64
    } else {
        let exp = (index - 4) / 4 + 2;
        let sub = ((index - 4) % 4) as u64;
        (4 + sub) << (exp - 2)
    }
}

/// The largest value that lands in bucket `index` (inclusive upper edge).
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 < HISTOGRAM_BUCKETS {
        bucket_lower(index + 1) - 1
    } else {
        u64::MAX
    }
}

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log2 latency histogram: sub-bucketed powers of two give
/// ≤ 25% relative quantile error, the bucket edges are compile-time
/// deterministic, and two histograms merge by adding bucket counts (plus
/// exact `count`/`sum`/`min`/`max`). Recording is lock-free — one
/// `fetch_add` on the bucket plus the aggregate cells.
///
/// Under `VirtualClock` time the recorded values are exact integers, so a
/// snapshot's quantiles are bit-for-bit reproducible across runs and
/// machines — which is what lets `BENCH_obs.json` commit p50/p99/p999.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Creates a detached histogram (not registered anywhere).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let inner = &self.inner;
        inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        inner.min.fetch_min(value, Ordering::Relaxed);
        inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_nanos(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Reads a point-in-time snapshot (consistent enough for quiescent or
    /// virtual-time use; concurrent recording may tear between cells, just
    /// like the ad-hoc counters this replaces).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        let buckets: Vec<(usize, u64)> = inner
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(index, cell)| {
                let count = cell.load(Ordering::Relaxed);
                (count > 0).then_some((index, count))
            })
            .collect();
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                inner.min.load(Ordering::Relaxed)
            },
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// An immutable, mergeable view of a [`Histogram`]: sparse non-zero
/// buckets plus exact aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `(bucket_index, count)` for every non-zero bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observations (wrapping like the recording cell).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by a deterministic rule: take the
    /// `ceil(q · count)`-th smallest observation's bucket and report that
    /// bucket's inclusive upper edge, clamped to the exact observed
    /// maximum. The result is a pure function of the bucket counts and
    /// `max`, so it is stable under merging and identical across runs.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// Merges two snapshots: bucket counts add, aggregates combine
    /// exactly. Associative and commutative, with the empty snapshot as
    /// identity — shard-per-thread histograms can be combined in any
    /// order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for &(index, count) in &other.buckets {
            *buckets.entry(index).or_insert(0) += count;
        }
        let count = self.count + other.count;
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        HistogramSnapshot {
            buckets: buckets.into_iter().collect(),
            count,
            sum: self.sum.wrapping_add(other.sum),
            min,
            max: self.max.max(other.max),
        }
    }
}

/// Identity of one registered metric: a family name plus sorted
/// `(key, value)` labels. Ordering on the key gives every snapshot and
/// exposition a stable, deterministic entry order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Family name, e.g. `relay_coalesced_batches`.
    pub name: String,
    /// Sorted label pairs, e.g. `[("tier", "edge")]`; empty for most.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_owned(),
            labels,
        }
    }

    /// Renders `name{k="v",…}` (bare name when unlabeled) — the form used
    /// by both encoders and by test assertions.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::new();
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
        out
    }
}

/// A registered metric handle (shared cells with whatever recorded it).
#[derive(Clone)]
enum MetricHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge level.
    Gauge(i64),
    /// A histogram view.
    Histogram(HistogramSnapshot),
}

/// One `(key, value)` pair in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry {
    /// The metric's identity.
    pub key: MetricKey,
    /// Its value at snapshot time.
    pub value: MetricValue,
}

/// Anything that can report its metrics as one deterministic snapshot:
/// the [`Registry`] itself, and every migrated per-tier stats façade
/// (`ExecutorStats`, `RelayStats`, `TransportStats`, …).
pub trait Snapshot {
    /// Reads a point-in-time view of every metric this source owns,
    /// sorted by metric key.
    fn snapshot(&self) -> MetricsSnapshot;
}

/// The process-wide (or per-harness) metric registry. Cloning shares the
/// registry; registration takes a short lock, recording never does (the
/// handles own their cells). Components register the *same* cells they
/// record through, so one [`Registry::snapshot`] sees every tier at once.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<MetricKey, MetricHandle>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, MetricHandle>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets or creates the unlabeled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Gets or creates the counter `name` with `labels`.
    ///
    /// # Panics
    ///
    /// Panics when `name`+`labels` is already registered as a different
    /// metric kind — that is a naming bug, not a runtime condition.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| MetricHandle::Counter(Counter::new()))
        {
            MetricHandle::Counter(counter) => counter.clone(),
            _ => panic!("metric {name:?} is registered with a different kind"),
        }
    }

    /// Gets or creates the unlabeled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gets or creates the gauge `name` with `labels`.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, as [`Registry::counter_with`].
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| MetricHandle::Gauge(Gauge::new()))
        {
            MetricHandle::Gauge(gauge) => gauge.clone(),
            _ => panic!("metric {name:?} is registered with a different kind"),
        }
    }

    /// Gets or creates the unlabeled histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Gets or creates the histogram `name` with `labels`.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind mismatch, as [`Registry::counter_with`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| MetricHandle::Histogram(Histogram::new()))
        {
            MetricHandle::Histogram(histogram) => histogram.clone(),
            _ => panic!("metric {name:?} is registered with a different kind"),
        }
    }

    /// Registers an existing counter's cells under `name`+`labels`, so a
    /// component built before the registry existed (or shared across
    /// harnesses) shows up in this registry's snapshot. Re-registering a
    /// key replaces the previous handle (last registration wins).
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) {
        self.lock().insert(
            MetricKey::new(name, labels),
            MetricHandle::Counter(counter.clone()),
        );
    }

    /// Registers an existing gauge, as [`Registry::register_counter`].
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        self.lock().insert(
            MetricKey::new(name, labels),
            MetricHandle::Gauge(gauge.clone()),
        );
    }

    /// Registers an existing histogram, as [`Registry::register_counter`].
    pub fn register_histogram(&self, name: &str, labels: &[(&str, &str)], histogram: &Histogram) {
        self.lock().insert(
            MetricKey::new(name, labels),
            MetricHandle::Histogram(histogram.clone()),
        );
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl Snapshot for Registry {
    fn snapshot(&self) -> MetricsSnapshot {
        let entries = self
            .lock()
            .iter()
            .map(|(key, handle)| MetricEntry {
                key: key.clone(),
                value: match handle {
                    MetricHandle::Counter(c) => MetricValue::Counter(c.value()),
                    MetricHandle::Gauge(g) => MetricValue::Gauge(g.value()),
                    MetricHandle::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// A deterministic point-in-time view of a metric set: entries sorted by
/// key, with JSON and Prometheus-style text encoders whose output is
/// byte-stable for equal inputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// All entries, ascending by [`MetricKey`].
    pub entries: Vec<MetricEntry>,
}

fn escape_json(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl MetricsSnapshot {
    /// Looks up a metric by its rendered key (see [`MetricKey::render`]).
    pub fn get(&self, rendered_key: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|entry| entry.key.render() == rendered_key)
            .map(|entry| &entry.value)
    }

    /// Convenience: the value of counter `rendered_key`, 0 when absent.
    pub fn counter(&self, rendered_key: &str) -> u64 {
        match self.get(rendered_key) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: the value of gauge `rendered_key`, 0 when absent.
    pub fn gauge(&self, rendered_key: &str) -> i64 {
        match self.get(rendered_key) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: the histogram at `rendered_key`, empty when absent.
    pub fn histogram(&self, rendered_key: &str) -> HistogramSnapshot {
        match self.get(rendered_key) {
            Some(MetricValue::Histogram(h)) => h.clone(),
            _ => HistogramSnapshot::default(),
        }
    }

    /// Keeps only counters and gauges — the deterministic subset a bench
    /// bin may print or commit (wall-clock histograms vary by machine).
    pub fn deterministic_only(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|entry| {
                    matches!(entry.value, MetricValue::Counter(_) | MetricValue::Gauge(_))
                })
                .cloned()
                .collect(),
        }
    }

    /// Renders the snapshot as stable, pretty-printed JSON (sorted keys,
    /// fixed indentation): `{"counters": {...}, "gauges": {...},
    /// "histograms": {...}}`, histograms as
    /// `{count, sum, min, max, p50, p90, p99, p999, buckets: [[lower, n]…]}`.
    pub fn to_json(&self) -> String {
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut gauges: Vec<(String, i64)> = Vec::new();
        let mut histograms: Vec<(String, &HistogramSnapshot)> = Vec::new();
        for entry in &self.entries {
            let key = entry.key.render();
            match &entry.value {
                MetricValue::Counter(v) => counters.push((key, *v)),
                MetricValue::Gauge(v) => gauges.push((key, *v)),
                MetricValue::Histogram(h) => histograms.push((key, h)),
            }
        }
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (key, value)) in counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(&mut out, key);
            let _ = write!(out, "\": {value}");
        }
        out.push_str(if counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"gauges\": {");
        for (i, (key, value)) in gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(&mut out, key);
            let _ = write!(out, "\": {value}");
        }
        out.push_str(if gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        out.push_str("  \"histograms\": {");
        for (i, (key, hist)) in histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(&mut out, key);
            let _ = write!(
                out,
                "\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"buckets\": [",
                hist.count,
                hist.sum,
                hist.min,
                hist.max,
                hist.quantile(0.50),
                hist.quantile(0.90),
                hist.quantile(0.99),
                hist.quantile(0.999),
            );
            for (j, (index, count)) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{}, {}]", bucket_lower(*index), count);
            }
            out.push_str("]}");
        }
        out.push_str(if histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push('}');
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// `# TYPE` headers, one sample line per counter/gauge, and the
    /// conventional `_bucket{le=…}` / `_sum` / `_count` triplet per
    /// histogram (cumulative counts over this histogram's fixed log2
    /// edges).
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for entry in &self.entries {
            let name = &entry.key.name;
            let labels = |out: &mut String, extra: Option<(&str, String)>| {
                let total = entry.key.labels.len() + usize::from(extra.is_some());
                if total == 0 {
                    return;
                }
                out.push('{');
                let mut first = true;
                for (k, v) in &entry.key.labels {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(out, "{k}=\"{v}\"");
                }
                if let Some((k, v)) = extra {
                    if !first {
                        out.push(',');
                    }
                    let _ = write!(out, "{k}=\"{v}\"");
                }
                out.push('}');
            };
            match &entry.value {
                MetricValue::Counter(value) => {
                    if *name != last_family {
                        let _ = writeln!(out, "# TYPE {name} counter");
                        last_family = name.clone();
                    }
                    out.push_str(name);
                    labels(&mut out, None);
                    let _ = writeln!(out, " {value}");
                }
                MetricValue::Gauge(value) => {
                    if *name != last_family {
                        let _ = writeln!(out, "# TYPE {name} gauge");
                        last_family = name.clone();
                    }
                    out.push_str(name);
                    labels(&mut out, None);
                    let _ = writeln!(out, " {value}");
                }
                MetricValue::Histogram(hist) => {
                    if *name != last_family {
                        let _ = writeln!(out, "# TYPE {name} histogram");
                        last_family = name.clone();
                    }
                    let mut cumulative = 0u64;
                    for (index, count) in &hist.buckets {
                        cumulative += count;
                        let _ = write!(out, "{name}_bucket");
                        labels(&mut out, Some(("le", bucket_upper(*index).to_string())));
                        let _ = writeln!(out, " {cumulative}");
                    }
                    let _ = write!(out, "{name}_bucket");
                    labels(&mut out, Some(("le", "+Inf".to_owned())));
                    let _ = writeln!(out, " {}", hist.count);
                    let _ = write!(out, "{name}_sum");
                    labels(&mut out, None);
                    let _ = writeln!(out, " {}", hist.sum);
                    let _ = write!(out, "{name}_count");
                    labels(&mut out, None);
                    let _ = writeln!(out, " {}", hist.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shards_sum_and_reset() {
        let counter = Counter::new();
        counter.inc();
        counter.add(41);
        assert_eq!(counter.value(), 42);
        let clone = counter.clone();
        clone.add(8);
        assert_eq!(counter.value(), 50);
        counter.reset();
        assert_eq!(clone.value(), 0);
    }

    #[test]
    fn counter_sums_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 8000);
    }

    #[test]
    fn gauge_levels() {
        let gauge = Gauge::new();
        gauge.set(5);
        gauge.inc();
        gauge.dec();
        gauge.add(10);
        gauge.sub(3);
        assert_eq!(gauge.value(), 12);
        gauge.set_max(7);
        assert_eq!(gauge.value(), 12);
        gauge.set_max(40);
        assert_eq!(gauge.value(), 40);
    }

    #[test]
    fn bucket_index_and_edges_are_inverse() {
        // Every bucket's lower edge maps back to that bucket, and the
        // value one below it maps to the previous bucket (edge landing).
        for index in 0..HISTOGRAM_BUCKETS {
            let lower = bucket_lower(index);
            assert_eq!(bucket_index(lower), index, "lower edge of {index}");
            assert_eq!(bucket_index(bucket_upper(index)), index, "upper of {index}");
            if index > 0 {
                assert_eq!(bucket_index(lower - 1), index - 1, "below edge of {index}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let hist = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 6);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 3);
        // Width-1 buckets make small quantiles exact.
        assert_eq!(snap.quantile(0.25), 0);
        assert_eq!(snap.quantile(0.50), 1);
        assert_eq!(snap.quantile(0.75), 2);
        assert_eq!(snap.quantile(1.0), 3);
    }

    #[test]
    fn quantile_clamps_to_observed_max() {
        let hist = Histogram::new();
        hist.record(1000);
        let snap = hist.snapshot();
        // A single observation: every quantile is exactly it (the bucket
        // upper edge clamps to max).
        assert_eq!(snap.quantile(0.5), 1000);
        assert_eq!(snap.quantile(0.999), 1000);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn merge_is_exact_on_aggregates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(100);
        b.record(7);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 112);
        assert_eq!(merged.min, 5);
        assert_eq!(merged.max, 100);
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.merge(&merged), merged);
        assert_eq!(merged.merge(&empty), merged);
    }

    #[test]
    fn registry_get_or_create_shares_cells() {
        let registry = Registry::new();
        let a = registry.counter("relay_batches");
        let b = registry.counter("relay_batches");
        a.add(3);
        assert_eq!(b.value(), 3);
        assert_eq!(registry.len(), 1);
        let labeled = registry.counter_with("relay_batches", &[("tier", "edge")]);
        labeled.inc();
        assert_eq!(registry.len(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("relay_batches"), 3);
        assert_eq!(snap.counter("relay_batches{tier=\"edge\"}"), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_mismatch() {
        let registry = Registry::new();
        registry.counter("depth");
        registry.gauge("depth");
    }

    #[test]
    fn register_existing_handles() {
        let registry = Registry::new();
        let counter = Counter::new();
        counter.add(9);
        registry.register_counter("executor_batch_executions", &[], &counter);
        let gauge = Gauge::new();
        gauge.set(4);
        registry.register_gauge("reactor_active_connections", &[], &gauge);
        let hist = Histogram::new();
        hist.record(10);
        registry.register_histogram("client_flush_latency_nanos", &[], &hist);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("executor_batch_executions"), 9);
        assert_eq!(snap.gauge("reactor_active_connections"), 4);
        assert_eq!(snap.histogram("client_flush_latency_nanos").count, 1);
        // Live cells: later increments show in later snapshots.
        counter.inc();
        assert_eq!(registry.snapshot().counter("executor_batch_executions"), 10);
    }

    #[test]
    fn snapshot_encoders_are_stable() {
        let registry = Registry::new();
        registry.counter("b_counter").add(2);
        registry
            .counter_with("a_counter", &[("tier", "edge")])
            .inc();
        registry.gauge("depth").set(-3);
        let hist = registry.histogram("lat");
        hist.record(1);
        hist.record(6);
        let snap = registry.snapshot();
        let json = snap.to_json();
        assert_eq!(json, snap.to_json());
        assert!(json.contains("\"a_counter{tier=\\\"edge\\\"}\": 1"));
        assert!(json.contains("\"b_counter\": 2"));
        assert!(json.contains("\"depth\": -3"));
        assert!(json.contains("\"p50\": 1"));
        let text = snap.to_prometheus_text();
        assert!(text.contains("# TYPE a_counter counter"));
        assert!(text.contains("a_counter{tier=\"edge\"} 1"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth -3"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_sum 7"));
        assert!(text.contains("lat_count 2"));
        // Entries come out sorted regardless of registration order.
        let names: Vec<_> = snap.entries.iter().map(|e| e.key.render()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn deterministic_subset_drops_histograms() {
        let registry = Registry::new();
        registry.counter("calls").inc();
        registry.histogram("lat").record(5);
        let snap = registry.snapshot().deterministic_only();
        assert_eq!(snap.entries.len(), 1);
        assert_eq!(snap.counter("calls"), 1);
    }
}
