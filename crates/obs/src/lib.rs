//! # `brmi_obs` — the unified observability layer
//!
//! Every tier of the batching middleware (client batcher → relay →
//! origin) used to keep its own ad-hoc counters. This crate gives them one
//! substrate with three parts:
//!
//! * **Metrics** ([`metrics`]): lock-free sharded [`Counter`]s, [`Gauge`]s
//!   and a fixed-bucket log2 [`Histogram`] with deterministic bucket edges
//!   and a merge operation. A [`Registry`] collects labeled families and
//!   produces sorted, byte-stable snapshots with JSON and Prometheus-style
//!   text encoders. Under virtual time the snapshots are bit-for-bit
//!   reproducible, which is how `BENCH_obs.json` commits p50/p99/p999.
//! * **Tracing** ([`trace`]): a [`Tracer`] mints compact
//!   [`TraceCtx`]`{trace_id, span_id, parent}` contexts (carried on the
//!   wire by `Frame::Traced` envelopes) and records [`SpanRecord`]s
//!   against a [`SpanSink`]; the test-side [`TraceCollector`] reassembles
//!   a cross-tier waterfall deterministically.
//! * **The [`Snapshot`] trait**: implemented by the registry and by every
//!   migrated per-tier stats façade, so a stress bin can dump one unified
//!   metrics snapshot no matter which tiers are in play.
//!
//! The crate sits at the bottom of the workspace graph (only `brmi-wire`
//! below it, for the `TraceCtx` wire type), so transport, rmi, core and
//! the bench harness can all record into the same cells.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use brmi_wire::protocol::TraceCtx;
pub use metrics::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricEntry, MetricKey, MetricValue, MetricsSnapshot, Registry, Snapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{SpanRecord, SpanSink, TimeSource, TraceCollector, Tracer, WallTime, WaterfallRow};
