//! Cross-tier trace spans: deterministic span identity, a recording
//! `Tracer`, and a test-side `TraceCollector` that reassembles the
//! client → relay → origin waterfall.
//!
//! The wire form is [`TraceCtx`] (defined in `brmi_wire` so the protocol
//! layer can carry it inside a `Frame::Traced` envelope): `trace_id` names
//! one end-to-end journey, `span_id` the sending tier's span, `parent` the
//! span that caused it. Each tier asks its [`Tracer`] for a child context,
//! does its work, records the span with start/end timestamps from a
//! [`TimeSource`], and forwards the frame re-wrapped with its own context.
//! Span and trace ids are minted from one atomic sequence, so a
//! single-threaded virtual-time test sees identical ids and timestamps on
//! every run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::metrics::Counter;
use brmi_wire::protocol::TraceCtx;

/// A monotonic clock the tracer timestamps spans with. Implemented by the
/// transport layer's `VirtualClock` (exact, deterministic) and by
/// [`WallTime`] (real `Instant`-based time for production use).
pub trait TimeSource: Send + Sync {
    /// Time elapsed since this source's arbitrary epoch.
    fn now(&self) -> Duration;
}

/// Real time: duration since the source was created.
#[derive(Debug, Clone)]
pub struct WallTime(std::time::Instant);

impl WallTime {
    /// Starts a wall-time source at "now".
    pub fn new() -> WallTime {
        WallTime(std::time::Instant::now())
    }
}

impl Default for WallTime {
    fn default() -> WallTime {
        WallTime::new()
    }
}

impl TimeSource for WallTime {
    fn now(&self) -> Duration {
        self.0.elapsed()
    }
}

/// One completed span: a tier's share of a traced journey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The journey this span belongs to.
    pub trace_id: u64,
    /// This span's identity.
    pub span_id: u64,
    /// The causing span (`0` for a root).
    pub parent: u64,
    /// A `tier.operation` name, e.g. `client.flush`, `relay.coalesce`,
    /// `origin.execute`.
    pub name: &'static str,
    /// Start timestamp (tracer [`TimeSource`] epoch).
    pub start: Duration,
    /// End timestamp (same epoch; `end >= start`).
    pub end: Duration,
}

impl SpanRecord {
    /// The span's wall (or virtual) duration.
    pub fn duration(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }

    /// The span's context as carried on the wire.
    pub fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent: self.parent,
        }
    }
}

/// Receives completed spans. Production sinks might ship them out of
/// process; tests use [`TraceCollector`].
pub trait SpanSink: Send + Sync {
    /// Accepts one completed span.
    fn record(&self, span: SpanRecord);
}

/// Mints span identity and records completed spans against a sink.
///
/// Ids are sequential from 1 out of one atomic, so a deterministic
/// (single-threaded, virtual-time) run produces identical ids every time;
/// under concurrency they are merely unique, which is all correlation
/// needs. The tracer also counts recorded spans on a [`Counter`] that can
/// be registered with a metrics `Registry` (family `trace_spans`).
pub struct Tracer {
    next_id: AtomicU64,
    time: Arc<dyn TimeSource>,
    sink: Arc<dyn SpanSink>,
    spans: Counter,
}

impl Tracer {
    /// Creates a tracer stamping spans from `time` and delivering them to
    /// `sink`.
    pub fn new(time: Arc<dyn TimeSource>, sink: Arc<dyn SpanSink>) -> Arc<Tracer> {
        Arc::new(Tracer {
            next_id: AtomicU64::new(1),
            time,
            sink,
            spans: Counter::new(),
        })
    }

    fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The tracer's current timestamp.
    pub fn now(&self) -> Duration {
        self.time.now()
    }

    /// Mints a root context: a fresh trace whose first span has no parent.
    pub fn root(&self) -> TraceCtx {
        let id = self.next_id();
        TraceCtx {
            trace_id: id,
            span_id: id,
            parent: 0,
        }
    }

    /// Mints a child context within `parent`'s trace.
    pub fn child(&self, parent: TraceCtx) -> TraceCtx {
        TraceCtx {
            trace_id: parent.trace_id,
            span_id: self.next_id(),
            parent: parent.span_id,
        }
    }

    /// Records a completed span for `ctx`.
    pub fn record(&self, ctx: TraceCtx, name: &'static str, start: Duration, end: Duration) {
        self.spans.inc();
        self.sink.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent: ctx.parent,
            name,
            start,
            end,
        });
    }

    /// The counter of spans recorded so far — register it under
    /// `trace_spans` to include tracing volume in a unified snapshot.
    pub fn span_counter(&self) -> Counter {
        self.spans.clone()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("spans", &self.spans.value())
            .finish_non_exhaustive()
    }
}

/// One row of a reassembled waterfall: a span at its causal depth
/// (root = 0, its children = 1, …), in depth-first order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaterfallRow {
    /// Causal depth below the trace root.
    pub depth: usize,
    /// The span itself.
    pub span: SpanRecord,
}

/// A test-side [`SpanSink`] that keeps every span in memory and
/// reassembles per-trace waterfalls.
#[derive(Default)]
pub struct TraceCollector {
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceCollector {
    /// Creates an empty collector.
    pub fn new() -> Arc<TraceCollector> {
        Arc::new(TraceCollector::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<SpanRecord>> {
        self.spans.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// All spans recorded so far, in arrival order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().clone()
    }

    /// Distinct trace ids seen so far, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.lock().iter().map(|span| span.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Reassembles the waterfall for one trace: spans ordered depth-first
    /// from the root(s), children sorted by `(start, span_id)`. A span
    /// whose parent was never recorded (e.g. a tier without tracing in
    /// the middle) is treated as a root, so partial traces still render.
    pub fn waterfall(&self, trace_id: u64) -> Vec<WaterfallRow> {
        let mut spans: Vec<SpanRecord> = self
            .lock()
            .iter()
            .filter(|span| span.trace_id == trace_id)
            .cloned()
            .collect();
        spans.sort_by_key(|span| (span.start, span.span_id));
        let known: std::collections::BTreeSet<u64> =
            spans.iter().map(|span| span.span_id).collect();
        let mut rows = Vec::with_capacity(spans.len());
        let roots: Vec<SpanRecord> = spans
            .iter()
            .filter(|span| span.parent == 0 || !known.contains(&span.parent))
            .cloned()
            .collect();
        for root in roots {
            Self::push_subtree(&root, 0, &spans, &mut rows);
        }
        rows
    }

    fn push_subtree(
        span: &SpanRecord,
        depth: usize,
        spans: &[SpanRecord],
        rows: &mut Vec<WaterfallRow>,
    ) {
        rows.push(WaterfallRow {
            depth,
            span: span.clone(),
        });
        for child in spans.iter().filter(|s| s.parent == span.span_id) {
            Self::push_subtree(child, depth + 1, spans, rows);
        }
    }

    /// Renders a human-readable waterfall for one trace: one line per
    /// span, indented by depth, with start/duration in microseconds.
    pub fn render_waterfall(&self, trace_id: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for row in self.waterfall(trace_id) {
            let _ = writeln!(
                out,
                "{:indent$}{} [{}..{}us] span={} parent={}",
                "",
                row.span.name,
                row.span.start.as_micros(),
                row.span.end.as_micros(),
                row.span.span_id,
                row.span.parent,
                indent = row.depth * 2,
            );
        }
        out
    }
}

impl SpanSink for TraceCollector {
    fn record(&self, span: SpanRecord) {
        self.lock().push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-cranked time source for tests.
    struct StepTime(AtomicU64);

    impl TimeSource for StepTime {
        fn now(&self) -> Duration {
            Duration::from_micros(self.0.fetch_add(10, Ordering::Relaxed))
        }
    }

    #[test]
    fn ids_are_sequential_and_deterministic() {
        let collector = TraceCollector::new();
        let tracer = Tracer::new(Arc::new(StepTime(AtomicU64::new(0))), collector.clone());
        let root = tracer.root();
        assert_eq!((root.trace_id, root.span_id, root.parent), (1, 1, 0));
        let child = tracer.child(root);
        assert_eq!((child.trace_id, child.span_id, child.parent), (1, 2, 1));
        let grandchild = tracer.child(child);
        assert_eq!(
            (grandchild.trace_id, grandchild.span_id, grandchild.parent),
            (1, 3, 2)
        );
        let next_root = tracer.root();
        assert_eq!(next_root.trace_id, 4);
    }

    #[test]
    fn waterfall_reassembles_causal_order() {
        let collector = TraceCollector::new();
        let tracer = Tracer::new(Arc::new(StepTime(AtomicU64::new(0))), collector.clone());
        let client = tracer.root();
        let relay = tracer.child(client);
        let origin = tracer.child(relay);
        // Record out of order (origin first, as replies unwind).
        tracer.record(
            origin,
            "origin.execute",
            Duration::from_micros(20),
            Duration::from_micros(30),
        );
        tracer.record(
            relay,
            "relay.coalesce",
            Duration::from_micros(10),
            Duration::from_micros(35),
        );
        tracer.record(
            client,
            "client.flush",
            Duration::from_micros(0),
            Duration::from_micros(40),
        );
        assert_eq!(collector.trace_ids(), vec![1]);
        let rows = collector.waterfall(1);
        let shape: Vec<(usize, &str)> = rows.iter().map(|row| (row.depth, row.span.name)).collect();
        assert_eq!(
            shape,
            vec![
                (0, "client.flush"),
                (1, "relay.coalesce"),
                (2, "origin.execute"),
            ]
        );
        // Causal containment: each child starts and ends within its parent.
        for pair in rows.windows(2) {
            if pair[1].depth == pair[0].depth + 1 {
                assert!(pair[1].span.start >= pair[0].span.start);
                assert!(pair[1].span.end <= pair[0].span.end);
            }
        }
        let rendered = collector.render_waterfall(1);
        assert!(rendered.contains("client.flush"));
        assert!(rendered.contains("  relay.coalesce"));
        assert!(rendered.contains("    origin.execute"));
        assert_eq!(tracer.span_counter().value(), 3);
    }

    #[test]
    fn orphan_spans_render_as_roots() {
        let collector = TraceCollector::new();
        let tracer = Tracer::new(Arc::new(StepTime(AtomicU64::new(0))), collector.clone());
        let root = tracer.root();
        let child = tracer.child(root);
        let grandchild = tracer.child(child);
        // The middle tier never records: the grandchild still shows up.
        tracer.record(
            grandchild,
            "origin.execute",
            Duration::ZERO,
            Duration::from_micros(5),
        );
        tracer.record(
            root,
            "client.flush",
            Duration::ZERO,
            Duration::from_micros(9),
        );
        let rows = collector.waterfall(1);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|row| row.depth == 0));
    }

    #[test]
    fn span_record_helpers() {
        let span = SpanRecord {
            trace_id: 3,
            span_id: 4,
            parent: 3,
            name: "relay.coalesce",
            start: Duration::from_micros(5),
            end: Duration::from_micros(9),
        };
        assert_eq!(span.duration(), Duration::from_micros(4));
        assert_eq!(
            span.ctx(),
            TraceCtx {
                trace_id: 3,
                span_id: 4,
                parent: 3
            }
        );
    }
}
