//! Histogram properties against brute-force oracles: bucket edges really
//! partition `u64`, merging is associative/commutative with the empty
//! snapshot as identity, and the deterministic quantile rule stays within
//! one bucket of the exact sorted-vector quantile.

use brmi_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Observation values that stress both the exact unit buckets and the
/// wide log2 octaves, including edges and near-edges.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => 0u64..16,
        4 => 0u64..100_000,
        2 => any::<u64>(),
        2 => (0u32..64).prop_map(|exp| 1u64 << exp.min(63)),
        2 => (0u32..64).prop_map(|exp| (1u64 << exp.min(63)).wrapping_sub(1)),
    ]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let histogram = Histogram::new();
    for &value in values {
        histogram.record(value);
    }
    histogram.snapshot()
}

/// Exact oracle quantile matching the histogram's rule on raw values:
/// the `ceil(q · n)`-th smallest observation.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    /// Every `u64` lands in exactly one bucket whose `[lower, upper]`
    /// range contains it, and the edge functions invert `bucket_index`.
    #[test]
    fn buckets_partition_the_value_space(value in arb_value()) {
        let index = bucket_index(value);
        prop_assert!(bucket_lower(index) <= value);
        prop_assert!(value <= bucket_upper(index));
        // Edges are consistent: the lower edge maps back to the bucket,
        // and its predecessor (when any) maps strictly below.
        prop_assert_eq!(bucket_index(bucket_lower(index)), index);
        if bucket_lower(index) > 0 {
            prop_assert_eq!(bucket_index(bucket_lower(index) - 1), index - 1);
        }
    }

    /// Merge is associative and commutative, with empty as identity, so
    /// shard-per-thread histograms combine in any order.
    #[test]
    fn merge_is_associative_commutative_with_identity(
        a in proptest::collection::vec(arb_value(), 0..40),
        b in proptest::collection::vec(arb_value(), 0..40),
        c in proptest::collection::vec(arb_value(), 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let empty = HistogramSnapshot::default();
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
        prop_assert_eq!(sa.merge(&empty), sa.clone());
        prop_assert_eq!(empty.merge(&sa), sa.clone());
        // Merging equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(sa.merge(&sb).merge(&sc), snapshot_of(&all));
    }

    /// The histogram quantile may round up to its bucket's upper edge but
    /// never crosses into another bucket: it is bounded below by the exact
    /// oracle value and above by the oracle's bucket upper edge (clamped
    /// to the observed max, exactly like the histogram).
    #[test]
    fn quantile_stays_within_the_oracle_bucket(
        values in proptest::collection::vec(arb_value(), 1..200),
        q in 0.0f64..1.0,
    ) {
        let snapshot = snapshot_of(&values);
        let mut values = values;
        values.sort_unstable();
        for q in [q, 0.5, 0.99, 1.0] {
            let exact = oracle_quantile(&values, q);
            let reported = snapshot.quantile(q);
            prop_assert!(reported >= exact);
            prop_assert!(reported <= bucket_upper(bucket_index(exact)).min(snapshot.max));
        }
        // p100 is the exact observed maximum, by the clamp.
        prop_assert_eq!(snapshot.quantile(1.0), snapshot.max);
        // Aggregates are exact regardless of bucketing.
        prop_assert_eq!(snapshot.min, values[0]);
        prop_assert_eq!(snapshot.max, *values.last().unwrap());
        prop_assert_eq!(snapshot.count, values.len() as u64);
    }
}
