//! Chained batches (paper Section 3.5): `flush_and_continue` keeps the
//! server-side object array alive so later batches can use earlier results.

mod common;

use brmi::policy::{AbortPolicy, ContinuePolicy};
use brmi_wire::RemoteErrorKind;
use common::{Rig, TestNode};

#[test]
fn chained_batch_uses_stub_from_first_batch() {
    // The paper's delete-if-old example: fetch data, decide locally,
    // continue operating on the same server object.
    let rig = Rig::chain(&[1, 42]);
    let (batch, root) = rig.batch(AbortPolicy);

    let node = root.next();
    let value = node.value();
    batch.flush_and_continue().unwrap();
    assert_eq!(rig.stats.requests(), 1);
    assert_eq!(value.get().unwrap(), 42);

    // Client-side decision using the actual value.
    if value.get().unwrap() > 10 {
        let name = node.name();
        node.set_value(0);
        batch.flush().unwrap();
        assert_eq!(name.get().unwrap(), "n1");
    }
    assert_eq!(rig.stats.requests(), 2);
    let chain_node = rig.root.next.lock().clone().unwrap();
    assert_eq!(*chain_node.value.lock(), 0);
}

#[test]
fn session_is_created_and_released() {
    let rig = Rig::chain(&[1, 2]);
    let (batch, root) = rig.batch(AbortPolicy);
    let _node = root.next();
    assert_eq!(rig.executor.session_count(), 0);
    batch.flush_and_continue().unwrap();
    assert_eq!(rig.executor.session_count(), 1);
    assert!(batch.session().is_some());
    let _ = root.value();
    batch.flush().unwrap();
    assert_eq!(rig.executor.session_count(), 0, "final flush releases");
    assert!(batch.session().is_none());
}

#[test]
fn dropping_a_chained_batch_releases_the_session() {
    let rig = Rig::chain(&[1, 2]);
    {
        let (batch, root) = rig.batch(AbortPolicy);
        let _node = root.next();
        batch.flush_and_continue().unwrap();
        assert_eq!(rig.executor.session_count(), 1);
        let (batch2, root2) = (batch, root);
        drop(root2);
        drop(batch2);
    }
    assert_eq!(rig.executor.session_count(), 0);
}

#[test]
fn batches_chain_multiple_times() {
    let rig = Rig::chain(&[0, 0, 0]);
    let (batch, root) = rig.batch(AbortPolicy);
    let n1 = root.next();
    batch.flush_and_continue().unwrap();
    let n2 = n1.next();
    n2.set_value(5);
    batch.flush_and_continue().unwrap();
    let v = n2.value();
    batch.flush().unwrap();
    assert_eq!(v.get().unwrap(), 5);
    assert_eq!(rig.stats.requests(), 3);
    assert_eq!(batch.stats().flushes, 3);
    assert_eq!(batch.stats().chained_flushes, 2);
}

#[test]
fn cursor_in_chained_batch_applies_to_current_element() {
    // The paper's "delete files older than cutoff" example: batch 1 reads
    // per-element data; batch 2 mutates only chosen elements.
    let rig = Rig::with_children(&[5, 50, 7, 70]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let value = cursor.value();
    batch.flush_and_continue().unwrap();

    while cursor.advance() {
        if value.get().unwrap() >= 10 {
            cursor.set_value(0); // applies to the current element only
        }
    }
    batch.flush().unwrap();

    let values: Vec<i32> = rig
        .root
        .children
        .lock()
        .iter()
        .map(|c| *c.value.lock())
        .collect();
    assert_eq!(values, vec![5, 0, 7, 0]);
    assert_eq!(rig.stats.requests(), 2, "exactly two batches (paper §3.5)");
}

#[test]
fn cursor_derived_stub_in_chained_batch_tracks_position() {
    let rig = Rig::with_children(&[1, 2]);
    for (i, child) in rig.root.children.lock().iter().enumerate() {
        *child.next.lock() = Some(TestNode::new(&format!("s{i}"), 10 * (i as i32 + 1)));
    }
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let succ = cursor.next();
    let succ_value = succ.value();
    batch.flush_and_continue().unwrap();

    let mut collected = Vec::new();
    while cursor.advance() {
        // Operate on the successor of the *current* element.
        let name = succ.name();
        batch.flush_and_continue().unwrap();
        collected.push((name.get().unwrap(), succ_value.get().unwrap()));
    }
    batch.flush().unwrap();
    assert_eq!(
        collected,
        vec![("s0".to_owned(), 10), ("s1".to_owned(), 20)]
    );
}

#[test]
fn using_flushed_cursor_without_advance_is_an_error() {
    let rig = Rig::with_children(&[1]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let _value = cursor.value();
    batch.flush_and_continue().unwrap();
    // Recording against the cursor before advance(): no current element.
    let late = cursor.name();
    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("not positioned"), "err: {err}");
    assert!(late.get().is_err());
}

#[test]
fn unknown_session_is_rejected() {
    use brmi_wire::invocation::{BatchRequest, PolicySpec, SessionId};
    let rig = Rig::chain(&[1]);
    let err = rig
        .conn
        .invoke_batch(BatchRequest {
            session: Some(SessionId(424_242)),
            calls: vec![],
            policy: PolicySpec::Abort,
            keep_session: false,
        })
        .unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("unknown batch session"));
}

#[test]
fn seq_numbers_span_the_chain() {
    // A stub created in batch 1 must still resolve in batch 3.
    let rig = Rig::chain(&[1, 2, 3, 4]);
    let (batch, root) = rig.batch(ContinuePolicy);
    let n1 = root.next();
    batch.flush_and_continue().unwrap();
    let n2 = n1.next();
    batch.flush_and_continue().unwrap();
    let n3 = n2.next();
    let deep_value = n3.value();
    let shallow_value = n1.value(); // from two batches ago
    batch.flush().unwrap();
    assert_eq!(deep_value.get().unwrap(), 4);
    assert_eq!(shallow_value.get().unwrap(), 2);
}
