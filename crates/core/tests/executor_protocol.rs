//! Protocol-level executor tests: hand-built `BatchRequest`s exercise the
//! server runtime's handling of malformed input that the typed client can
//! never produce — forward references, unknown calls, bogus cursor
//! elements, session misuse.

mod common;

use brmi_wire::invocation::{
    Arg, BatchRequest, CallSeq, InvocationData, PolicySpec, SessionId, SlotOutcome, Target,
};
use brmi_wire::{ObjectId, Value};
use common::Rig;

fn call(seq: u32, target: Target, method: &str, args: Vec<Arg>) -> InvocationData {
    InvocationData {
        seq: CallSeq(seq),
        target,
        method: method.into(),
        args,
        cursor: None,
        opens_cursor: false,
    }
}

fn send(rig: &Rig, calls: Vec<InvocationData>, policy: PolicySpec) -> Vec<(CallSeq, SlotOutcome)> {
    rig.conn
        .invoke_batch(BatchRequest {
            session: None,
            calls,
            policy,
            keep_session: false,
        })
        .expect("batch executes")
        .slots
}

fn root_target(rig: &Rig) -> Target {
    Target::Remote(rig.root_ref.id())
}

#[test]
fn forward_reference_is_a_protocol_fault() {
    let rig = Rig::chain(&[1]);
    // Call 0 targets the result of call 5, which never exists.
    let slots = send(
        &rig,
        vec![call(0, Target::Result(CallSeq(5)), "value", vec![])],
        PolicySpec::Continue,
    );
    match &slots[0].1 {
        SlotOutcome::Err(env) => {
            assert_eq!(env.kind, "protocol");
            assert!(env.message.contains("unknown call"));
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn reference_to_value_returning_call_is_rejected() {
    let rig = Rig::chain(&[1]);
    let slots = send(
        &rig,
        vec![
            call(0, root_target(&rig), "value", vec![]),
            call(1, Target::Result(CallSeq(0)), "value", vec![]),
        ],
        PolicySpec::Continue,
    );
    assert!(matches!(slots[0].1, SlotOutcome::Ok(Value::I32(1))));
    match &slots[1].1 {
        SlotOutcome::Err(env) => {
            assert!(env.message.contains("did not produce a remote object"));
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn unknown_cursor_element_is_rejected() {
    let rig = Rig::chain(&[1]);
    let slots = send(
        &rig,
        vec![call(
            0,
            Target::CursorElement(CallSeq(9), 3),
            "value",
            vec![],
        )],
        PolicySpec::Continue,
    );
    match &slots[0].1 {
        SlotOutcome::Err(env) => {
            assert!(env.message.contains("unknown cursor element"));
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn unknown_target_object_is_no_such_object() {
    let rig = Rig::chain(&[1]);
    let slots = send(
        &rig,
        vec![call(0, Target::Remote(ObjectId(4040)), "value", vec![])],
        PolicySpec::Continue,
    );
    match &slots[0].1 {
        SlotOutcome::Err(env) => assert_eq!(env.kind, "no-such-object"),
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn unknown_remote_ref_argument_is_no_such_object() {
    let rig = Rig::chain(&[1]);
    let slots = send(
        &rig,
        vec![call(
            0,
            root_target(&rig),
            "add",
            vec![Arg::Value(Value::RemoteRef(ObjectId(4040)))],
        )],
        PolicySpec::Continue,
    );
    match &slots[0].1 {
        SlotOutcome::Err(env) => assert_eq!(env.kind, "no-such-object"),
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn unknown_method_is_reported_per_call() {
    let rig = Rig::chain(&[1]);
    let slots = send(
        &rig,
        vec![
            call(0, root_target(&rig), "no_such", vec![]),
            call(1, root_target(&rig), "value", vec![]),
        ],
        PolicySpec::Continue,
    );
    match &slots[0].1 {
        SlotOutcome::Err(env) => assert_eq!(env.kind, "no-such-method"),
        other => panic!("expected error, got {other:?}"),
    }
    assert!(matches!(slots[1].1, SlotOutcome::Ok(Value::I32(1))));
}

#[test]
fn arity_mismatch_is_bad_arguments() {
    let rig = Rig::chain(&[1]);
    let slots = send(
        &rig,
        vec![call(
            0,
            root_target(&rig),
            "value",
            vec![Arg::Value(Value::I32(3))],
        )],
        PolicySpec::Continue,
    );
    match &slots[0].1 {
        SlotOutcome::Err(env) => assert_eq!(env.kind, "bad-arguments"),
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn type_mismatch_is_bad_arguments() {
    let rig = Rig::chain(&[1]);
    let slots = send(
        &rig,
        vec![call(
            0,
            root_target(&rig),
            "set_value",
            vec![Arg::Value(Value::Str("not an int".into()))],
        )],
        PolicySpec::Continue,
    );
    match &slots[0].1 {
        SlotOutcome::Err(env) => assert_eq!(env.kind, "bad-arguments"),
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn remote_arg_of_wrong_interface_is_bad_arguments() {
    // Export a second object of a different interface and pass it where a
    // Node is expected.
    use brmi::remote_interface;
    use std::sync::Arc;

    remote_interface! {
        pub interface Other {
            fn poke() -> i32;
        }
    }
    struct OtherImpl;
    impl Other for OtherImpl {
        fn poke(&self) -> Result<i32, brmi_wire::RemoteError> {
            Ok(1)
        }
    }
    let rig = Rig::chain(&[1]);
    let other_id = rig
        .server
        .export(OtherSkeleton::remote_arc(Arc::new(OtherImpl)));
    let slots = send(
        &rig,
        vec![
            call(0, Target::Remote(other_id), "poke", vec![]),
            // add expects a Node; hand it the Other result.
            call(
                1,
                root_target(&rig),
                "add",
                vec![Arg::Value(Value::RemoteRef(other_id))],
            ),
        ],
        PolicySpec::Continue,
    );
    assert!(matches!(slots[0].1, SlotOutcome::Ok(Value::I32(1))));
    match &slots[1].1 {
        SlotOutcome::Err(env) => {
            assert_eq!(env.kind, "bad-arguments");
            assert!(env.message.contains("expected a remote Node"));
        }
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn empty_batch_returns_empty_response() {
    let rig = Rig::chain(&[1]);
    let response = rig
        .conn
        .invoke_batch(BatchRequest {
            session: None,
            calls: vec![],
            policy: PolicySpec::Abort,
            keep_session: false,
        })
        .unwrap();
    assert!(response.slots.is_empty());
    assert!(response.cursors.is_empty());
    assert_eq!(response.session, None);
}

#[test]
fn empty_keep_session_batch_creates_a_session() {
    let rig = Rig::chain(&[1]);
    let response = rig
        .conn
        .invoke_batch(BatchRequest {
            session: None,
            calls: vec![],
            policy: PolicySpec::Abort,
            keep_session: true,
        })
        .unwrap();
    let session = response.session.expect("session created");
    assert_eq!(rig.executor.session_count(), 1);
    rig.conn.release_session(session).unwrap();
    assert_eq!(rig.executor.session_count(), 0);
}

#[test]
fn session_ids_are_stable_across_a_chain() {
    let rig = Rig::chain(&[1]);
    let first = rig
        .conn
        .invoke_batch(BatchRequest {
            session: None,
            calls: vec![call(0, root_target(&rig), "value", vec![])],
            policy: PolicySpec::Abort,
            keep_session: true,
        })
        .unwrap();
    let session = first.session.unwrap();
    let second = rig
        .conn
        .invoke_batch(BatchRequest {
            session: Some(session),
            calls: vec![call(1, root_target(&rig), "value", vec![])],
            policy: PolicySpec::Abort,
            keep_session: true,
        })
        .unwrap();
    assert_eq!(second.session, Some(session), "chain keeps its id");
    rig.conn.release_session(session).unwrap();
}

#[test]
fn releasing_unknown_session_is_harmless() {
    let rig = Rig::chain(&[1]);
    rig.conn.release_session(SessionId(777)).unwrap();
    assert_eq!(rig.executor.session_count(), 0);
}

#[test]
fn slots_preserve_request_order() {
    let rig = Rig::chain(&[5]);
    let slots = send(
        &rig,
        vec![
            call(10, root_target(&rig), "value", vec![]),
            call(3, root_target(&rig), "name", vec![]),
            call(7, root_target(&rig), "value", vec![]),
        ],
        PolicySpec::Abort,
    );
    let seqs: Vec<u32> = slots.iter().map(|(seq, _)| seq.0).collect();
    assert_eq!(seqs, vec![10, 3, 7], "response order mirrors request order");
}
