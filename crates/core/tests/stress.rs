//! Scale smoke tests: large batches, deep chains, wide cursors — guarding
//! against quadratic blowups or stack overflows in recording and replay.

mod common;

use brmi::policy::AbortPolicy;
use common::Rig;

#[test]
fn ten_thousand_calls_in_one_batch() {
    let rig = Rig::chain(&[7]);
    let (batch, root) = rig.batch(AbortPolicy);
    let futures: Vec<_> = (0..10_000).map(|_| root.value()).collect();
    batch.flush().unwrap();
    assert_eq!(rig.stats.requests(), 1);
    for future in &futures {
        assert_eq!(future.get().unwrap(), 7);
    }
    assert_eq!(batch.stats().calls_recorded, 10_000);
    assert_eq!(rig.executor.stats().calls_replayed, 10_000);
}

#[test]
fn thousand_hop_chained_remote_results() {
    // A 1001-node list traversed in one batch: 1000 dependent remote
    // results resolved iteratively (no recursion anywhere).
    let values: Vec<i32> = (0..1001).collect();
    let rig = Rig::chain(&values);
    let (batch, root) = rig.batch(AbortPolicy);
    let mut node = root;
    for _ in 0..1000 {
        node = node.next();
    }
    let value = node.value();
    batch.flush().unwrap();
    assert_eq!(value.get().unwrap(), 1000);
    assert_eq!(rig.stats.requests(), 1);
}

#[test]
fn wide_cursor_with_many_members() {
    let values: Vec<i32> = (0..500).collect();
    let rig = Rig::with_children(&values);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let name = cursor.name();
    let value = cursor.value();
    batch.flush().unwrap();
    assert_eq!(cursor.element_count(), Some(500));
    assert_eq!(rig.executor.stats().cursor_elements, 500);

    let mut total = 0i64;
    let mut rows = 0;
    while cursor.advance() {
        total += i64::from(value.get().unwrap());
        assert!(name.get().unwrap().starts_with('c'));
        rows += 1;
    }
    assert_eq!(rows, 500);
    assert_eq!(total, (0..500).sum::<i64>());
}

#[test]
fn long_chain_of_flushes_reuses_one_session() {
    let rig = Rig::chain(&[3]);
    let (batch, root) = rig.batch(AbortPolicy);
    let mut first_session = None;
    for _ in 0..50 {
        let value = root.value();
        batch.flush_and_continue().unwrap();
        assert_eq!(value.get().unwrap(), 3);
        let session = batch.session().expect("live session");
        if let Some(first) = first_session {
            assert_eq!(session, first, "session id stable across the chain");
        } else {
            first_session = Some(session);
        }
        assert_eq!(rig.executor.session_count(), 1);
    }
    batch.flush().unwrap();
    assert_eq!(rig.executor.session_count(), 0);
    assert_eq!(batch.stats().flushes, 51);
}

#[test]
fn executor_stats_accumulate_across_clients() {
    let rig = Rig::chain(&[1]);
    for _ in 0..10 {
        let (batch, root) = rig.batch(AbortPolicy);
        let _ = root.value();
        let _ = root.name();
        let _ = root.set_value(1);
        batch.flush().unwrap();
    }
    let stats = rig.executor.stats();
    assert_eq!(stats.batches, 10);
    assert_eq!(stats.calls_replayed, 30);
    assert_eq!(
        stats.read_calls_replayed, 20,
        "value/name are #[read_only], set_value is a write"
    );
    assert_eq!(stats.cursor_elements, 0);
}
