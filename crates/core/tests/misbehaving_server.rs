//! Client robustness against non-conforming servers: missing results,
//! unsolicited sessions, bogus cursor metadata. The client must degrade to
//! clean errors, never panic or hang.

mod common;

use std::sync::Arc;

use brmi::policy::AbortPolicy;
use brmi::Batch;
use brmi_rmi::Connection;
use brmi_transport::{RequestHandler, Transport};
use brmi_wire::invocation::{BatchResponse, CallSeq, CursorResult, SessionId, SlotOutcome};
use brmi_wire::protocol::Frame;
use brmi_wire::{ObjectId, RemoteError, RemoteErrorKind, Value};
use common::BNode;

/// A "server" that answers every batch with a canned response.
struct CannedServer {
    response: BatchResponse,
}

impl RequestHandler for CannedServer {
    fn handle(&self, frame: Frame) -> Frame {
        match frame {
            Frame::BatchCall(_) => Frame::BatchReturn(self.response.clone()),
            Frame::ReleaseSession(_) => Frame::Released,
            _ => Frame::Return(Value::Null),
        }
    }
}

struct DirectTransport(Arc<dyn RequestHandler>);

impl Transport for DirectTransport {
    fn request(&self, frame: Frame) -> Result<Frame, RemoteError> {
        Ok(self.0.handle(frame))
    }
}

fn rig_with(response: BatchResponse) -> (Batch, BNode) {
    let conn = Connection::new(Arc::new(DirectTransport(Arc::new(CannedServer {
        response,
    }))));
    let reference = conn.reference(ObjectId(1));
    let batch = Batch::new(conn, AbortPolicy);
    let root = BNode::new(&batch, &reference);
    (batch, root)
}

#[test]
fn missing_results_become_protocol_errors() {
    // The server acknowledges the batch but returns no slots at all.
    let (batch, root) = rig_with(BatchResponse::default());
    let a = root.value();
    let b = root.name();
    batch.flush().unwrap();
    for err in [a.get().unwrap_err(), b.get().unwrap_err()] {
        assert_eq!(err.kind(), RemoteErrorKind::Protocol);
        assert!(err.message().contains("missing result"), "{err}");
    }
}

#[test]
fn unsolicited_session_is_released_defensively() {
    // keep_session == false, yet the server returns a session id: the
    // client must not retain it.
    let (batch, root) = rig_with(BatchResponse {
        session: Some(SessionId(9)),
        slots: vec![(CallSeq(0), SlotOutcome::Ok(Value::I32(1)))],
        cursors: vec![],
        restarts: 0,
    });
    let value = root.value();
    batch.flush().unwrap();
    assert_eq!(value.get().unwrap(), 1);
    assert_eq!(batch.session(), None);
    assert!(batch.is_finished());
}

#[test]
fn unknown_cursor_metadata_is_ignored() {
    // A cursor result for a cursor the client never created.
    let (batch, root) = rig_with(BatchResponse {
        session: None,
        slots: vec![(CallSeq(0), SlotOutcome::Ok(Value::I32(5)))],
        cursors: vec![CursorResult {
            cursor_seq: CallSeq(77),
            len: 3,
            members: vec![CallSeq(78)],
            rows: vec![vec![SlotOutcome::Ok(Value::Null)]; 3],
        }],
        restarts: 0,
    });
    let value = root.value();
    batch.flush().unwrap();
    assert_eq!(value.get().unwrap(), 5);
}

#[test]
fn extra_unknown_slots_are_ignored() {
    let (batch, root) = rig_with(BatchResponse {
        session: None,
        slots: vec![
            (CallSeq(0), SlotOutcome::Ok(Value::I32(5))),
            (CallSeq(999), SlotOutcome::Ok(Value::I32(6))),
        ],
        cursors: vec![],
        restarts: 0,
    });
    let value = root.value();
    batch.flush().unwrap();
    assert_eq!(value.get().unwrap(), 5);
}

#[test]
fn wrong_reply_frame_kind_is_a_protocol_error() {
    struct WrongReply;
    impl RequestHandler for WrongReply {
        fn handle(&self, _frame: Frame) -> Frame {
            Frame::Return(Value::Null) // not a BatchReturn
        }
    }
    let conn = Connection::new(Arc::new(DirectTransport(Arc::new(WrongReply))));
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let root = BNode::new(&batch, &conn.reference(ObjectId(1)));
    let value = root.value();
    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(value.get().is_err());
}
