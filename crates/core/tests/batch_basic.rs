//! Core batching behaviour: recording, single-round-trip execution, chained
//! remote results, remote arguments, `ok()` and misuse errors.

mod common;

use brmi::policy::AbortPolicy;
use brmi::Batch;
use brmi_wire::RemoteErrorKind;
use common::{BNode, Rig};

#[test]
fn many_calls_one_round_trip() {
    let rig = Rig::chain(&[10, 20, 30]);
    let (batch, root) = rig.batch(AbortPolicy);

    let name = root.name();
    let value = root.value();
    let value_again = root.value();
    assert_eq!(rig.stats.requests(), 0, "nothing sent before flush");

    batch.flush().unwrap();
    assert_eq!(rig.stats.requests(), 1, "a batch is exactly one round trip");
    assert_eq!(name.get().unwrap(), "n0");
    assert_eq!(value.get().unwrap(), 10);
    assert_eq!(value_again.get().unwrap(), 10);
}

#[test]
fn rmi_stub_costs_one_round_trip_per_call() {
    let rig = Rig::chain(&[10, 20]);
    let root = rig.rmi_root();
    assert_eq!(root.value().unwrap(), 10);
    assert_eq!(root.name().unwrap(), "n0");
    assert_eq!(rig.stats.requests(), 2);
}

#[test]
fn future_before_flush_is_an_error() {
    let rig = Rig::chain(&[1]);
    let (_batch, root) = rig.batch(AbortPolicy);
    let value = root.value();
    let err = value.get().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
}

#[test]
fn chained_remote_results_resolve_in_one_batch() {
    // root.next().next().value() — a linked-list traversal in one trip.
    let rig = Rig::chain(&[1, 2, 3]);
    let (batch, root) = rig.batch(AbortPolicy);
    let third = root.next().next();
    let name = third.name();
    let value = third.value();
    batch.flush().unwrap();
    assert_eq!(rig.stats.requests(), 1);
    assert_eq!(name.get().unwrap(), "n2");
    assert_eq!(value.get().unwrap(), 3);
}

#[test]
fn remote_argument_refers_to_earlier_result() {
    // add(root.next()) receives the *actual* server object, not a copy.
    let rig = Rig::chain(&[10, 32]);
    let (batch, root) = rig.batch(AbortPolicy);
    let next = root.next();
    let sum = root.add(&next);
    batch.flush().unwrap();
    assert_eq!(sum.get().unwrap(), 42);
}

#[test]
fn void_methods_return_unit_futures() {
    let rig = Rig::chain(&[5]);
    let (batch, root) = rig.batch(AbortPolicy);
    let set = root.set_value(99);
    let value = root.value();
    batch.flush().unwrap();
    set.get().unwrap();
    assert_eq!(value.get().unwrap(), 99);
    assert_eq!(*rig.root.value.lock(), 99);
}

#[test]
fn calls_execute_in_recorded_order() {
    let rig = Rig::chain(&[0]);
    let (batch, root) = rig.batch(AbortPolicy);
    root.set_value(1);
    let a = root.value();
    root.set_value(2);
    let b = root.value();
    batch.flush().unwrap();
    assert_eq!(a.get().unwrap(), 1);
    assert_eq!(b.get().unwrap(), 2);
}

#[test]
fn ok_reports_success_and_failure_of_creating_call() {
    let rig = Rig::chain(&[1, 2]);
    let (batch, root) = rig.batch(brmi::policy::ContinuePolicy);
    let good = root.next();
    let bad = good.next(); // n1 has no successor -> NoNextNode
    batch.flush().unwrap();
    good.ok().unwrap();
    common::assert_app_error(&bad.ok().unwrap_err(), "NoNextNode");
}

#[test]
fn recording_after_flush_fails_cleanly() {
    let rig = Rig::chain(&[1]);
    let (batch, root) = rig.batch(AbortPolicy);
    let _ = root.value();
    batch.flush().unwrap();

    let late = root.value();
    let err = late.get().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("already executed"));

    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
}

#[test]
fn foreign_stub_poisons_the_batch() {
    let rig = Rig::chain(&[1, 2]);
    let (batch_a, root_a) = rig.batch(AbortPolicy);
    let (batch_b, _root_b) = rig.batch(AbortPolicy);

    let stub_from_a = root_a.next();
    // Using a stub from batch A inside batch B is the paper's
    // "different batch chain" error (Section 4.1).
    let other_root = BNode::new(&batch_b, &rig.root_ref);
    let sum = other_root.add(&stub_from_a);
    let err = batch_b.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("different batch"));
    assert!(sum.get().is_err());
    // Batch A is unaffected.
    batch_a.flush().unwrap();
}

#[test]
fn empty_flush_is_a_no_op() {
    let rig = Rig::chain(&[1]);
    let (batch, _root) = rig.batch(AbortPolicy);
    batch.flush().unwrap();
    assert_eq!(rig.stats.requests(), 0);
    assert!(batch.is_finished());
}

#[test]
fn multiple_roots_in_one_batch() {
    let rig = Rig::chain(&[7]);
    // Export a second object and wrap both in the same batch.
    let other = common::TestNode::new("other", 35);
    let id = rig.server.export(common::NodeSkeleton::remote_arc(other));
    let other_ref = rig.conn.reference(id);

    let batch = Batch::new(rig.conn.clone(), AbortPolicy);
    let a = BNode::new(&batch, &rig.root_ref);
    let b = BNode::new(&batch, &other_ref);
    let sum = a.add(&b);
    let b_value = b.value();
    batch.flush().unwrap();
    assert_eq!(rig.stats.requests(), 1);
    assert_eq!(sum.get().unwrap(), 42);
    assert_eq!(b_value.get().unwrap(), 35);
}

#[test]
fn stats_track_recording_and_flushes() {
    let rig = Rig::with_children(&[1, 2]);
    let (batch, root) = rig.batch(AbortPolicy);
    let _ = root.value();
    let cursor = root.children();
    let _ = cursor.value();
    batch.flush().unwrap();
    let stats = batch.stats();
    assert_eq!(stats.calls_recorded, 3);
    assert_eq!(stats.flushes, 1);
    assert_eq!(stats.chained_flushes, 0);
    assert_eq!(stats.cursors_created, 1);
}

#[test]
fn concurrent_batches_on_one_connection() {
    let rig = Rig::chain(&[42]);
    let mut handles = Vec::new();
    for _ in 0..8 {
        let conn = rig.conn.clone();
        let root_ref = rig.root_ref.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..20 {
                let batch = Batch::new(conn.clone(), AbortPolicy);
                let root = BNode::new(&batch, &root_ref);
                let v = root.value();
                let n = root.name();
                batch.flush().unwrap();
                assert_eq!(v.get().unwrap(), 42);
                assert_eq!(n.get().unwrap(), "n0");
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
}

#[test]
fn batch_is_debug_and_clonable() {
    let rig = Rig::chain(&[1]);
    let (batch, root) = rig.batch(AbortPolicy);
    let _ = root.value();
    let cloned = batch.clone();
    assert!(format!("{batch:?}").contains("pending_calls"));
    cloned.flush().unwrap();
    assert!(batch.is_finished());
}
