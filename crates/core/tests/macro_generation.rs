//! Robustness of the `remote_interface!` generator itself: expansion in
//! different scopes, degenerate interfaces, generated-type properties
//! (Send/Sync, Debug, Clone), and documentation attribute forwarding.

use std::sync::Arc;

use brmi::remote_interface;
use brmi_wire::RemoteError;

remote_interface! {
    /// An interface with no methods at all.
    pub interface Empty {
    }
}

remote_interface! {
    /// Exercises every return and argument shape in one interface.
    pub interface Kitchen {
        /// Doc comments on methods are forwarded to the generated items.
        fn void_no_args();
        fn value_no_args() -> i64;
        fn many_values(a: i32, b: String, c: Vec<u8>, d: bool, e: f64) -> String;
        fn opt(input: Option<i32>) -> Option<String>;
        fn pairs(input: Vec<(i32, String)>) -> Vec<(String, i32)>;
        fn make() -> remote Kitchen;
        fn make_many() -> remote_array Kitchen;
        fn take(other: remote Kitchen) -> i64;
        fn mixed(n: i32, other: remote Kitchen, s: String) -> i64;
    }
}

struct KitchenImpl;

impl Kitchen for KitchenImpl {
    fn void_no_args(&self) -> Result<(), RemoteError> {
        Ok(())
    }

    fn value_no_args(&self) -> Result<i64, RemoteError> {
        Ok(9)
    }

    fn many_values(
        &self,
        a: i32,
        b: String,
        c: Vec<u8>,
        d: bool,
        e: f64,
    ) -> Result<String, RemoteError> {
        Ok(format!("{a}/{b}/{}/{d}/{e}", c.len()))
    }

    fn opt(&self, input: Option<i32>) -> Result<Option<String>, RemoteError> {
        Ok(input.map(|n| n.to_string()))
    }

    fn pairs(&self, input: Vec<(i32, String)>) -> Result<Vec<(String, i32)>, RemoteError> {
        Ok(input.into_iter().map(|(n, s)| (s, n)).collect())
    }

    fn make(&self) -> Result<Arc<dyn Kitchen>, RemoteError> {
        Ok(Arc::new(KitchenImpl))
    }

    fn make_many(&self) -> Result<Vec<Arc<dyn Kitchen>>, RemoteError> {
        Ok(vec![Arc::new(KitchenImpl), Arc::new(KitchenImpl)])
    }

    fn take(&self, other: Arc<dyn Kitchen>) -> Result<i64, RemoteError> {
        other.value_no_args()
    }

    fn mixed(&self, n: i32, other: Arc<dyn Kitchen>, s: String) -> Result<i64, RemoteError> {
        Ok(i64::from(n) + other.value_no_args()? + s.len() as i64)
    }
}

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn generated_types_are_send_and_sync() {
    assert_send_sync::<KitchenSkeleton>();
    assert_send_sync::<KitchenStub>();
    assert_send_sync::<KitchenLoopback>();
    assert_send_sync::<BKitchen>();
    assert_send_sync::<CKitchen>();
    assert_send_sync::<EmptySkeleton>();
}

#[test]
fn macro_expands_in_function_scope() {
    remote_interface! {
        /// Declared inside a test function body (C-ANYWHERE).
        pub interface Inner {
            fn ping() -> i32;
        }
    }
    struct InnerImpl;
    impl Inner for InnerImpl {
        fn ping(&self) -> Result<i32, RemoteError> {
            Ok(1)
        }
    }
    let skeleton = InnerSkeleton::remote_arc(Arc::new(InnerImpl));
    assert_eq!(skeleton.interface_name(), "Inner");
}

#[test]
fn kitchen_sink_round_trips_through_a_batch() {
    use brmi::policy::AbortPolicy;
    use brmi::{Batch, BatchExecutor};
    use brmi_rmi::{Connection, RmiServer};
    use brmi_transport::inproc::InProcTransport;

    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let id = server
        .bind("k", KitchenSkeleton::remote_arc(Arc::new(KitchenImpl)))
        .unwrap();
    let conn = Connection::new(Arc::new(InProcTransport::new(server.clone())));
    let reference = conn.reference(id);

    let batch = Batch::new(conn.clone(), AbortPolicy);
    let kitchen = BKitchen::new(&batch, &reference);
    let void = kitchen.void_no_args();
    let many = kitchen.many_values(1, "x".into(), vec![1, 2, 3], true, 0.5);
    let some = kitchen.opt(Some(4));
    let none = kitchen.opt(None);
    let pairs = kitchen.pairs(vec![(1, "a".into())]);
    let child = kitchen.make();
    let taken = kitchen.take(&child);
    let mixed = kitchen.mixed(10, &child, "abc".into());
    let cursor = kitchen.make_many();
    let cursor_value = cursor.value_no_args();
    batch.flush().unwrap();

    void.get().unwrap();
    assert_eq!(many.get().unwrap(), "1/x/3/true/0.5");
    assert_eq!(some.get().unwrap(), Some("4".to_owned()));
    assert_eq!(none.get().unwrap(), None);
    assert_eq!(pairs.get().unwrap(), vec![("a".to_owned(), 1)]);
    child.ok().unwrap();
    assert_eq!(taken.get().unwrap(), 9);
    assert_eq!(mixed.get().unwrap(), 10 + 9 + 3);
    assert_eq!(cursor.element_count(), Some(2));
    assert!(cursor.advance());
    assert_eq!(cursor_value.get().unwrap(), 9);
}

#[test]
fn kitchen_sink_round_trips_through_rmi_stubs() {
    use brmi_rmi::{Connection, RmiServer};
    use brmi_transport::inproc::InProcTransport;

    let server = RmiServer::new();
    let id = server
        .bind("k", KitchenSkeleton::remote_arc(Arc::new(KitchenImpl)))
        .unwrap();
    let conn = Connection::new(Arc::new(InProcTransport::new(server.clone())));
    let stub = KitchenStub::new(conn.reference(id));

    stub.void_no_args().unwrap();
    assert_eq!(stub.value_no_args().unwrap(), 9);
    assert_eq!(stub.opt(Some(7)).unwrap(), Some("7".to_owned()));
    let child = stub.make().unwrap();
    assert_eq!(stub.take(&child).unwrap(), 9);
    let many = stub.make_many().unwrap();
    assert_eq!(many.len(), 2);
    assert_eq!(many[0].value_no_args().unwrap(), 9);
    assert_eq!(stub.mixed(1, &child, "zz".into()).unwrap(), 1 + 9 + 2);
}

#[test]
fn generated_types_have_nonempty_debug() {
    let skeleton = KitchenSkeleton::new(Arc::new(KitchenImpl));
    assert!(format!("{skeleton:?}").contains("KitchenSkeleton"));
}

#[test]
fn empty_interface_dispatch_rejects_everything() {
    use brmi_rmi::RmiServer;

    struct Nothing;
    impl Empty for Nothing {}

    let server = RmiServer::new();
    let skeleton = EmptySkeleton::remote_arc(Arc::new(Nothing));
    assert_eq!(skeleton.interface_name(), "Empty");
    let err = skeleton
        .invoke("anything", vec![], &server.call_ctx())
        .unwrap_err();
    assert_eq!(err.kind(), brmi_wire::RemoteErrorKind::NoSuchMethod);
}

remote_interface! {
    /// Exercises the `#[read_only]` metadata grammar.
    pub interface Meter {
        #[read_only]
        /// Doc comments after the annotation still forward.
        fn reading(sensor: String) -> f64;
        /// Docs before the annotation — the conventional order — work too.
        #[read_only]
        fn twin() -> remote Meter;
        fn calibrate(offset: f64);
    }
}

#[test]
fn method_meta_table_captures_mutability_arity_and_result_kind() {
    let metas = MeterSkeleton::METHOD_META;
    assert_eq!(metas.len(), 3);

    let reading = &metas[0];
    assert_eq!(reading.interface, "Meter");
    assert_eq!(reading.name, "reading");
    assert!(reading.read_only);
    assert_eq!(reading.arity, 1);
    assert!(!reading.returns_remote);
    assert!(reading.cacheable_read());

    let twin = &metas[1];
    assert!(twin.read_only, "read-only remote-returning");
    assert!(twin.returns_remote);
    assert!(!twin.cacheable_read(), "remote results are never cacheable");

    let calibrate = &metas[2];
    assert!(!calibrate.read_only);
    assert_eq!(calibrate.arity, 1);
}

#[test]
fn per_method_consts_match_the_table() {
    assert_eq!(
        MeterSkeleton::METHOD_READING,
        &MeterSkeleton::METHOD_META[0]
    );
    assert_eq!(MeterSkeleton::METHOD_TWIN, &MeterSkeleton::METHOD_META[1]);
    assert_eq!(
        MeterSkeleton::METHOD_CALIBRATE,
        &MeterSkeleton::METHOD_META[2]
    );
}

#[test]
fn interface_meta_reaches_companions_and_skeleton_dispatch() {
    use brmi::Companions;
    use brmi_wire::MethodRegistry;

    let meta = <dyn Meter as Companions>::interface_meta();
    assert_eq!(meta.interface, "Meter");
    assert!(meta.method("reading").unwrap().read_only);
    assert!(meta.method("nope").is_none());

    // The skeleton answers per-object metadata queries (the batch
    // executor's view).
    struct MeterImpl;
    impl Meter for MeterImpl {
        fn reading(&self, _sensor: String) -> Result<f64, RemoteError> {
            Ok(1.5)
        }
        fn twin(&self) -> Result<Arc<dyn Meter>, RemoteError> {
            Ok(Arc::new(MeterImpl))
        }
        fn calibrate(&self, _offset: f64) -> Result<(), RemoteError> {
            Ok(())
        }
    }
    let skeleton = MeterSkeleton::remote_arc(Arc::new(MeterImpl));
    assert!(skeleton.method_meta("reading").unwrap().read_only);
    assert!(!skeleton.method_meta("calibrate").unwrap().read_only);
    assert!(skeleton.method_meta("missing").is_none());

    // And the registry consumes the same table.
    let registry = MethodRegistry::of(&[meta]);
    assert!(registry.is_cacheable_read("reading"));
    assert!(!registry.is_cacheable_read("twin"));
    assert!(!registry.is_cacheable_read("calibrate"));
}

#[test]
fn unannotated_methods_default_to_write() {
    for meta in KitchenSkeleton::METHOD_META {
        assert!(!meta.read_only, "{} must default to write", meta.name);
    }
    assert_eq!(KitchenSkeleton::METHOD_META.len(), 9);
    assert_eq!(KitchenSkeleton::METHOD_MANY_VALUES.arity, 5);
}
