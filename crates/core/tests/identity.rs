//! Remote reference identity (paper Section 4.4): RMI loses identity when
//! a stub is marshalled back to its own server (and pays a loopback call
//! for every use); BRMI replays locally and preserves identity.

mod common;

use brmi::policy::AbortPolicy;
use common::{Rig, TestNode};

#[test]
fn rmi_breaks_identity_and_pays_loopback_calls() {
    let rig = Rig::chain(&[10, 32]);
    let root = rig.rmi_root();

    // create() then use(created): the paper's RemoteIdentity scenario.
    let created = root.next().unwrap();
    // The server receives a marshalled stub, not its own object.
    let same = root.is_same(&created).unwrap();
    assert!(!same, "RMI does not preserve remote reference identity");

    // Using the argument (add calls other.value()) re-enters the
    // middleware: a loopback call.
    let before = rig.server.loopback_calls();
    let sum = root.add(&created).unwrap();
    assert_eq!(sum, 42);
    assert_eq!(
        rig.server.loopback_calls(),
        before + 1,
        "each use of the round-tripped stub is a loopback RMI call"
    );
}

#[test]
fn brmi_preserves_identity_with_no_loopback() {
    let rig = Rig::chain(&[10, 32]);
    let (batch, root) = rig.batch(AbortPolicy);

    let created = root.next();
    let same = root.is_same(&created);
    let sum = root.add(&created);
    batch.flush().unwrap();

    assert!(
        same.get().unwrap(),
        "BRMI resolves the argument to the identical server object"
    );
    assert_eq!(sum.get().unwrap(), 42);
    assert_eq!(rig.server.loopback_calls(), 0, "no middleware re-entry");
    assert_eq!(rig.stats.requests(), 1);
}

#[test]
fn rmi_exports_every_remote_result() {
    let rig = Rig::chain(&[1, 2]);
    let root = rig.rmi_root();
    let table_before = rig.server.table().len();
    let _stub1 = root.next().unwrap();
    let _stub2 = root.next().unwrap();
    // Two exports for the same server object: RMI semantics.
    assert_eq!(rig.server.table().len(), table_before + 2);
}

#[test]
fn brmi_exports_nothing_for_batched_remote_results() {
    let rig = Rig::chain(&[1, 2, 3]);
    let (batch, root) = rig.batch(AbortPolicy);
    let table_before = rig.server.table().len();
    let n1 = root.next();
    let _n2 = n1.next();
    let _v = n1.value();
    batch.flush().unwrap();
    assert_eq!(
        rig.server.table().len(),
        table_before,
        "batched remote results never enter the export table (paper §4.4)"
    );
}

#[test]
fn pre_existing_reference_as_batch_argument_resolves_directly() {
    // A reference obtained outside the batch (RMI-style) can be passed
    // into a batch; the executor resolves it to the local object.
    let rig = Rig::chain(&[10, 32]);
    let other = TestNode::new("other", 32);
    let id = rig.server.export(common::NodeSkeleton::remote_arc(other));
    let other_ref = rig.conn.reference(id);

    let (batch, root) = rig.batch(AbortPolicy);
    let other_stub = common::BNode::new(&batch, &other_ref);
    let sum = root.add(&other_stub);
    batch.flush().unwrap();
    assert_eq!(sum.get().unwrap(), 42);
    assert_eq!(rig.server.loopback_calls(), 0);
}

#[test]
fn loopback_proxy_chains_through_remote_returns() {
    // RMI: root.next() marshalled home, then .next() through the proxy
    // yields another proxy; every hop is a loopback call.
    let rig = Rig::chain(&[1, 2, 3]);
    let root = rig.rmi_root();
    let n1 = root.next().unwrap();
    let sum = root.add(&n1).unwrap(); // forces server-side use of proxy
    assert_eq!(sum, 1 + 2);
    assert!(rig.server.loopback_calls() >= 1);
}
