//! Property test: for arbitrary programs over the fixture graph, executing
//! through a BRMI batch produces exactly the same results as executing each
//! call through plain RMI — the central semantic claim of explicit
//! batching (a batch is a latency optimization, not a semantics change).

mod common;

use brmi::policy::ContinuePolicy;
use common::Rig;
use proptest::prelude::*;

/// One step of a random client program against the chain fixture.
#[derive(Debug, Clone)]
enum Op {
    /// Read the value at chain depth `d`.
    Value(usize),
    /// Read the name at chain depth `d`.
    Name(usize),
    /// Set the value at chain depth `d`.
    Set(usize, i32),
    /// add(self at depth a, node at depth b).
    Add(usize, usize),
}

fn arb_op(depth: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..depth).prop_map(Op::Value),
        (0..depth).prop_map(Op::Name),
        (0..depth, -1000i32..1000).prop_map(|(d, v)| Op::Set(d, v)),
        (0..depth, 0..depth).prop_map(|(a, b)| Op::Add(a, b)),
    ]
}

/// Result of one op, normalized for comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Int(i32),
    Text(String),
    Unit,
    Error(String),
}

fn run_rmi(rig: &Rig, ops: &[Op]) -> Vec<Outcome> {
    let root = rig.rmi_root();
    // Stubs per depth, via repeated next() calls (all succeed: chain is
    // long enough by construction).
    let mut stubs = vec![root];
    let depth_needed = ops
        .iter()
        .map(|op| match op {
            Op::Value(d) | Op::Name(d) | Op::Set(d, _) => *d,
            Op::Add(a, b) => (*a).max(*b),
        })
        .max()
        .unwrap_or(0);
    for d in 0..depth_needed {
        let next = stubs[d].next().expect("chain deep enough");
        stubs.push(next);
    }
    ops.iter()
        .map(|op| match op {
            Op::Value(d) => match stubs[*d].value() {
                Ok(v) => Outcome::Int(v),
                Err(e) => Outcome::Error(e.exception().to_owned()),
            },
            Op::Name(d) => match stubs[*d].name() {
                Ok(s) => Outcome::Text(s),
                Err(e) => Outcome::Error(e.exception().to_owned()),
            },
            Op::Set(d, v) => match stubs[*d].set_value(*v) {
                Ok(()) => Outcome::Unit,
                Err(e) => Outcome::Error(e.exception().to_owned()),
            },
            Op::Add(a, b) => match stubs[*a].add(&stubs[*b]) {
                Ok(v) => Outcome::Int(v),
                Err(e) => Outcome::Error(e.exception().to_owned()),
            },
        })
        .collect()
}

fn run_brmi(rig: &Rig, ops: &[Op]) -> Vec<Outcome> {
    let (batch, root) = rig.batch(ContinuePolicy);
    let mut stubs = vec![root];
    let depth_needed = ops
        .iter()
        .map(|op| match op {
            Op::Value(d) | Op::Name(d) | Op::Set(d, _) => *d,
            Op::Add(a, b) => (*a).max(*b),
        })
        .max()
        .unwrap_or(0);
    for d in 0..depth_needed {
        let next = stubs[d].next();
        stubs.push(next);
    }
    enum Pending {
        Int(brmi::BatchFuture<i32>),
        Text(brmi::BatchFuture<String>),
        Unit(brmi::BatchFuture<()>),
    }
    let futures: Vec<Pending> = ops
        .iter()
        .map(|op| match op {
            Op::Value(d) => Pending::Int(stubs[*d].value()),
            Op::Name(d) => Pending::Text(stubs[*d].name()),
            Op::Set(d, v) => Pending::Unit(stubs[*d].set_value(*v)),
            Op::Add(a, b) => Pending::Int(stubs[*a].add(&stubs[*b])),
        })
        .collect();
    batch
        .flush()
        .expect("flush succeeds over in-proc transport");
    futures
        .into_iter()
        .map(|pending| match pending {
            Pending::Int(f) => match f.get() {
                Ok(v) => Outcome::Int(v),
                Err(e) => Outcome::Error(e.exception().to_owned()),
            },
            Pending::Text(f) => match f.get() {
                Ok(s) => Outcome::Text(s),
                Err(e) => Outcome::Error(e.exception().to_owned()),
            },
            Pending::Unit(f) => match f.get() {
                Ok(()) => Outcome::Unit,
                Err(e) => Outcome::Error(e.exception().to_owned()),
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_execution_equals_sequential_rmi(
        values in proptest::collection::vec(-100i32..100, 3..6),
        ops in proptest::collection::vec(arb_op(3), 0..24),
    ) {
        // Two identical graphs, one per runtime, since Set mutates.
        let rmi_rig = Rig::chain(&values);
        let brmi_rig = Rig::chain(&values);
        let rmi_results = run_rmi(&rmi_rig, &ops);
        let brmi_results = run_brmi(&brmi_rig, &ops);
        prop_assert_eq!(rmi_results, brmi_results);

        // And the server-side end states agree.
        let mut rmi_node = Some(rmi_rig.root.clone());
        let mut brmi_node = Some(brmi_rig.root.clone());
        while let (Some(a), Some(b)) = (rmi_node, brmi_node) {
            prop_assert_eq!(*a.value.lock(), *b.value.lock());
            rmi_node = a.next.lock().clone();
            brmi_node = b.next.lock().clone();
        }
    }
}
