//! Pipelined flush (`flush_async`): flush without join, replies claimed on
//! first future touch, and the ordering contract — a chained flush issued
//! while a pipelined flush is still in flight must reach the server
//! *after* it, preserving recording order end to end.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use brmi::policy::AbortPolicy;
use brmi::{remote_interface, Batch, BatchExecutor};
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::fault::{FaultPlan, FaultPoint, FaultyTransport};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::retry::{RetryPolicy, RetryTransport};
use brmi_transport::Transport;
use brmi_wire::protocol::Frame;
use brmi_wire::{RemoteError, RemoteErrorKind};
use parking_lot::Mutex;

remote_interface! {
    /// An append-only journal: the order of appends is the observable
    /// server-side call order.
    pub interface Journal {
        /// Appends an entry; returns its index.
        fn append(entry: String) -> i32;
        /// Every entry so far, comma-joined.
        fn joined() -> String;
    }
}

#[derive(Default)]
struct JournalServer {
    log: Mutex<Vec<String>>,
}

impl Journal for JournalServer {
    fn append(&self, entry: String) -> Result<i32, RemoteError> {
        let mut log = self.log.lock();
        log.push(entry);
        Ok(log.len() as i32 - 1)
    }

    fn joined(&self) -> Result<String, RemoteError> {
        Ok(self.log.lock().join(","))
    }
}

struct Rig {
    executor: Arc<BatchExecutor>,
    conn: Connection,
    journal: Arc<JournalServer>,
    root: RemoteRef,
}

fn rig_over(wrap: impl FnOnce(Arc<InProcTransport>) -> Arc<dyn Transport>) -> Rig {
    let server = RmiServer::new();
    let executor = BatchExecutor::install(&server);
    let journal = Arc::new(JournalServer::default());
    let id = server
        .bind("journal", JournalSkeleton::remote_arc(journal.clone()))
        .expect("fresh bind");
    let conn = Connection::new(wrap(Arc::new(InProcTransport::new(server.clone()))));
    let root = conn.reference(id);
    Rig {
        executor,
        conn,
        journal,
        root,
    }
}

fn rig() -> Rig {
    rig_over(|t| t)
}

/// Delays the first batch frame it sees, so a pipelined flush is reliably
/// still in flight when the test issues the next one.
struct DelayFirstBatch {
    inner: Arc<InProcTransport>,
    delayed: AtomicBool,
}

impl Transport for DelayFirstBatch {
    fn request(&self, frame: Frame) -> Result<Frame, RemoteError> {
        if matches!(frame, Frame::BatchCall(_)) && !self.delayed.swap(true, Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(40));
        }
        self.inner.request(frame)
    }
}

#[test]
fn futures_claim_the_reply_on_first_touch() {
    let rig = rig();
    let batch = Batch::new(rig.conn.clone(), AbortPolicy);
    let journal = BJournal::new(&batch, &rig.root);
    let first = journal.append("a".into());
    let second = journal.append("b".into());
    let pending = batch.flush_async();
    // No join: the first future touch blocks until the in-flight round
    // trip lands, then yields the value.
    assert_eq!(first.get().unwrap(), 0);
    assert_eq!(second.get().unwrap(), 1);
    assert!(pending.is_done());
    pending.join().unwrap();
    assert_eq!(rig.journal.log.lock().as_slice(), ["a", "b"]);
}

#[test]
fn flush_async_finishes_recording_immediately() {
    let rig = rig();
    let batch = Batch::new(rig.conn.clone(), AbortPolicy);
    let journal = BJournal::new(&batch, &rig.root);
    let _ = journal.append("a".into());
    let pending = batch.flush_async();
    // Like `flush`, a plain pipelined flush ends the batch: recording
    // afterwards fails even though the reply may not have landed yet.
    let late = journal.append("too-late".into());
    assert_eq!(late.get().unwrap_err().kind(), RemoteErrorKind::Protocol);
    pending.join().unwrap();
    assert!(batch.is_finished());
    assert_eq!(rig.journal.log.lock().as_slice(), ["a"]);
}

/// The `flush_and_continue` ordering regression: a chained flush issued
/// while a pipelined flush is still on the wire must not overtake it.
#[test]
fn chained_flush_waits_for_inflight_pipelined_flush() {
    let rig = rig_over(|inner| {
        Arc::new(DelayFirstBatch {
            inner,
            delayed: AtomicBool::new(false),
        })
    });
    let batch = Batch::new(rig.conn.clone(), AbortPolicy);
    let journal = BJournal::new(&batch, &rig.root);

    let a1 = journal.append("a1".into());
    let a2 = journal.append("a2".into());
    // Segment A ships pipelined; its round trip is delayed 40 ms.
    let pending = batch.flush_and_continue_async();
    assert!(!pending.is_done(), "segment A should still be in flight");

    // Segment B records while A is on the wire, then flushes chained —
    // which must join A first (A also owns the session id B continues).
    let b1 = journal.append("b1".into());
    batch.flush_and_continue().unwrap();

    pending.join().unwrap();
    assert_eq!(
        rig.journal.joined().unwrap(),
        "a1,a2,b1",
        "server-side call order must match recording order"
    );
    assert_eq!(a1.get().unwrap(), 0);
    assert_eq!(a2.get().unwrap(), 1);
    assert_eq!(b1.get().unwrap(), 2);

    // Close the chain and release the session.
    batch.flush().unwrap();
    assert_eq!(rig.executor.session_count(), 0);
}

#[test]
fn two_pipelined_chained_segments_stay_ordered() {
    let rig = rig_over(|inner| {
        Arc::new(DelayFirstBatch {
            inner,
            delayed: AtomicBool::new(false),
        })
    });
    let batch = Batch::new(rig.conn.clone(), AbortPolicy);
    let journal = BJournal::new(&batch, &rig.root);

    let _ = journal.append("a".into());
    let first = batch.flush_and_continue_async();
    let _ = journal.append("b".into());
    let second = batch.flush_and_continue_async();
    first.join().unwrap();
    second.join().unwrap();
    assert_eq!(rig.journal.joined().unwrap(), "a,b");
    batch.flush().unwrap();
    assert_eq!(rig.executor.session_count(), 0);
}

#[test]
fn transport_failure_surfaces_at_join_and_on_futures() {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let journal = Arc::new(JournalServer::default());
    let id = server
        .bind("journal", JournalSkeleton::remote_arc(journal.clone()))
        .expect("fresh bind");
    let faulty = FaultyTransport::new(InProcTransport::new(server.clone()), FaultPlan::Always);
    let conn = Connection::new(faulty as Arc<dyn Transport>);
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let journal_stub = BJournal::new(&batch, &conn.reference(id));

    let entry = journal_stub.append("lost".into());
    let pending = batch.flush_async();
    let err = pending.join().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Transport);
    // The future re-throws the same communication error.
    assert_eq!(entry.get().unwrap_err().kind(), RemoteErrorKind::Transport);
    assert!(journal.log.lock().is_empty(), "nothing may have executed");
}

/// Crown-jewel delivery contract at the batch layer: a keyed connection
/// over a retry-wrapped faulty link re-sends a flush whose *reply* was
/// lost, and the origin's reply cache answers the duplicate instead of
/// appending the journal entries a second time.
#[test]
fn keyed_flush_survives_reply_loss_without_double_execution() {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let journal = Arc::new(JournalServer::default());
    let id = server
        .bind("journal", JournalSkeleton::remote_arc(journal.clone()))
        .expect("fresh bind");
    // The first round trip *executes* but its reply is dropped on the way
    // back — the worst case for a retry: blind re-send would double-append.
    let faulty = FaultyTransport::with_fault_point(
        InProcTransport::new(server.clone()),
        FaultPlan::OnNth(1),
        FaultPoint::Reply,
    );
    let retried = RetryTransport::over(
        faulty.clone() as Arc<dyn Transport>,
        RetryPolicy::immediate(4),
    );
    let conn = Connection::new_keyed(retried as Arc<dyn Transport>);
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let stub = BJournal::new(&batch, &conn.reference(id));

    let a = stub.append("a".into());
    let b = stub.append("b".into());
    batch.flush().unwrap();

    assert_eq!(a.get().unwrap(), 0);
    assert_eq!(b.get().unwrap(), 1);
    assert_eq!(faulty.injected(), 1, "the first reply must have been lost");
    assert_eq!(
        rig_cache_counts(&server),
        (1, 1),
        "one execution, one replayed duplicate"
    );
    assert_eq!(
        journal.log.lock().as_slice(),
        ["a", "b"],
        "the segment executed exactly once"
    );
}

fn rig_cache_counts(server: &RmiServer) -> (u64, u64) {
    let cache = server.reply_cache();
    (cache.executions(), cache.replays())
}

#[test]
fn segment_after_failed_pipelined_flush_fails_cleanly() {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let journal = Arc::new(JournalServer::default());
    let id = server
        .bind("journal", JournalSkeleton::remote_arc(journal.clone()))
        .expect("fresh bind");
    // The first batch frame is dropped; anything after it must fail too,
    // never execute out of order.
    let faulty = FaultyTransport::new(InProcTransport::new(server.clone()), FaultPlan::OnNth(1));
    let conn = Connection::new(faulty as Arc<dyn Transport>);
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let stub = BJournal::new(&batch, &conn.reference(id));

    let a = stub.append("a".into());
    let first = batch.flush_and_continue_async();
    let b = stub.append("b".into());
    let second = batch.flush_and_continue_async();

    assert_eq!(first.join().unwrap_err().kind(), RemoteErrorKind::Transport);
    assert_eq!(second.join().unwrap_err().kind(), RemoteErrorKind::Protocol);
    assert!(a.get().is_err());
    assert!(b.get().is_err());
    assert!(journal.log.lock().is_empty());
}

/// Regression: claiming must be shareable. Many threads touching futures
/// of the same in-flight segment concurrently all block on the flush and
/// all see real results — no thread may observe a spurious "not flushed"
/// because another thread claimed first.
#[test]
fn concurrent_future_touches_all_claim_the_same_flush() {
    for _ in 0..20 {
        let rig = rig_over(|inner| {
            Arc::new(DelayFirstBatch {
                inner,
                delayed: AtomicBool::new(false),
            })
        });
        let batch = Batch::new(rig.conn.clone(), AbortPolicy);
        let journal = BJournal::new(&batch, &rig.root);
        let shared = journal.append("x".into());
        let _ = batch.flush_async();
        let toucher = {
            let shared = shared.clone();
            std::thread::spawn(move || shared.get())
        };
        assert_eq!(shared.get().unwrap(), 0, "main-thread touch");
        assert_eq!(toucher.join().unwrap().unwrap(), 0, "concurrent touch");
    }
}

#[test]
fn empty_pipelined_flush_completes_ok() {
    let rig = rig();
    let batch = Batch::new(rig.conn.clone(), AbortPolicy);
    let pending = batch.flush_async();
    pending.join().unwrap();
    assert!(batch.is_finished());
}

#[test]
fn flush_async_after_flush_reports_already_executed() {
    let rig = rig();
    let batch = Batch::new(rig.conn.clone(), AbortPolicy);
    batch.flush().unwrap();
    let pending = batch.flush_async();
    assert_eq!(
        pending.join().unwrap_err().kind(),
        RemoteErrorKind::Protocol
    );
}
