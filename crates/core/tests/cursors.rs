//! Array cursors (paper Section 3.4): bulk operations on every element of
//! a server-side array in one round trip, then client-side iteration.

mod common;

use brmi::policy::{AbortPolicy, ContinuePolicy};
use brmi_wire::RemoteErrorKind;
use common::{Rig, TestNode};

#[test]
fn cursor_applies_operations_to_every_element() {
    let rig = Rig::with_children(&[10, 20, 30]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let name = cursor.name();
    let value = cursor.value();
    batch.flush().unwrap();
    assert_eq!(rig.stats.requests(), 1, "whole listing in one round trip");

    assert_eq!(cursor.element_count(), Some(3));
    let mut seen = Vec::new();
    while cursor.advance() {
        seen.push((name.get().unwrap(), value.get().unwrap()));
    }
    assert_eq!(
        seen,
        vec![
            ("c0".to_owned(), 10),
            ("c1".to_owned(), 20),
            ("c2".to_owned(), 30)
        ]
    );
    // Exhausted: advance stays false and futures keep the last element.
    assert!(!cursor.advance());
}

#[test]
fn empty_cursor_iterates_zero_times() {
    let rig = Rig::with_children(&[]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let _value = cursor.value();
    batch.flush().unwrap();
    assert_eq!(cursor.element_count(), Some(0));
    assert!(!cursor.advance());
}

#[test]
fn cursor_futures_before_advance_are_unset() {
    let rig = Rig::with_children(&[1]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let value = cursor.value();
    batch.flush().unwrap();
    // Flushed, but next()/advance() not yet called.
    let err = value.get().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(cursor.advance());
    assert_eq!(value.get().unwrap(), 1);
}

#[test]
fn cursor_derived_stubs_are_per_element() {
    // Each child has a successor; cursor.next() navigates per element.
    let rig = Rig::with_children(&[1, 2]);
    for (i, child) in rig.root.children.lock().iter().enumerate() {
        let succ = TestNode::new(&format!("succ{i}"), 100 + i as i32);
        *child.next.lock() = Some(succ);
    }
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let succ = cursor.next(); // interface method, per element
    let succ_name = succ.name();
    let succ_value = succ.value();
    batch.flush().unwrap();

    let mut seen = Vec::new();
    while cursor.advance() {
        seen.push((succ_name.get().unwrap(), succ_value.get().unwrap()));
    }
    assert_eq!(
        seen,
        vec![("succ0".to_owned(), 100), ("succ1".to_owned(), 101)]
    );
}

#[test]
fn cursor_as_argument_repeats_call_per_element() {
    // root.add(cursor) is recorded once but executed per element:
    // the cursor is an argument, so the call joins the sub-batch.
    let rig = Rig::with_children(&[1, 2, 3]);
    *rig.root.value.lock() = 100;
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let sum = root.add(&cursor);
    batch.flush().unwrap();

    let mut sums = Vec::new();
    while cursor.advance() {
        sums.push(sum.get().unwrap());
    }
    assert_eq!(sums, vec![101, 102, 103]);
}

#[test]
fn per_element_failures_with_continue_policy() {
    // Child c1 has no successor; Continue lets other elements proceed.
    let rig = Rig::with_children(&[1, 2, 3]);
    {
        let children = rig.root.children.lock();
        *children[0].next.lock() = Some(TestNode::new("s0", 100));
        *children[2].next.lock() = Some(TestNode::new("s2", 300));
    }
    let (batch, root) = rig.batch(ContinuePolicy);
    let cursor = root.children();
    let succ = cursor.next();
    let succ_value = succ.value();
    batch.flush().unwrap();

    assert!(cursor.advance());
    assert_eq!(succ_value.get().unwrap(), 100);
    succ.ok().unwrap();

    assert!(cursor.advance());
    // Element 1: next() failed; dependent value future re-throws.
    common::assert_app_error(&succ_value.get().unwrap_err(), "NoNextNode");
    common::assert_app_error(&succ.ok().unwrap_err(), "NoNextNode");

    assert!(cursor.advance());
    assert_eq!(succ_value.get().unwrap(), 300);
    assert!(!cursor.advance());
}

#[test]
fn abort_policy_stops_at_first_failing_element() {
    let rig = Rig::with_children(&[1, 2, 3]);
    {
        let children = rig.root.children.lock();
        *children[0].next.lock() = Some(TestNode::new("s0", 100));
        // c1 and c2 have no successors.
    }
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let succ_value = cursor.next().value();
    let after = root.value(); // recorded after the cursor sub-batch
    batch.flush().unwrap();

    assert!(cursor.advance());
    assert_eq!(succ_value.get().unwrap(), 100);
    assert!(cursor.advance());
    common::assert_app_error(&succ_value.get().unwrap_err(), "NoNextNode");
    assert!(cursor.advance());
    // Element 2 was never executed: skipped with the breaking cause.
    common::assert_app_error(&succ_value.get().unwrap_err(), "NoNextNode");
    // The batch aborted: the following call is skipped too.
    common::assert_app_error(&after.get().unwrap_err(), "NoNextNode");
}

#[test]
fn failed_cursor_creation_fails_member_futures() {
    let rig = Rig::chain(&[1]); // no children is fine; fail earlier instead
    let (batch, root) = rig.batch(ContinuePolicy);
    // next() fails (no successor), so children() on it cannot run.
    let broken = root.next();
    let cursor = broken.children();
    let value = cursor.value();
    batch.flush().unwrap();
    common::assert_app_error(&cursor.ok().unwrap_err(), "NoNextNode");
    common::assert_app_error(&value.get().unwrap_err(), "NoNextNode");
    assert!(!cursor.advance());
    assert_eq!(cursor.element_count(), None);
}

#[test]
fn interleaved_cursor_operations_are_rejected() {
    let rig = Rig::with_children(&[1, 2]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let _a = cursor.value(); // cursor sub-batch begins
    let _b = root.value(); // unrelated call closes the sub-batch
    let _c = cursor.name(); // resuming is the contiguity error (§4.1)
    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("contiguous"), "err: {err}");
}

#[test]
fn two_cursors_with_separated_sub_batches_work() {
    let rig = Rig::with_children(&[1, 2]);
    let (batch, root) = rig.batch(AbortPolicy);
    let first = root.children();
    let first_value = first.value();
    let second = root.children();
    let second_name = second.name();
    batch.flush().unwrap();

    assert!(first.advance());
    assert_eq!(first_value.get().unwrap(), 1);
    assert!(second.advance());
    assert_eq!(second_name.get().unwrap(), "c0");
    assert!(first.advance());
    assert_eq!(first_value.get().unwrap(), 2);
}

#[test]
fn nested_cursors_are_rejected() {
    let rig = Rig::with_children(&[1]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let _nested = cursor.children(); // cursor within a cursor
    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("nested"), "err: {err}");
}

#[test]
fn one_call_cannot_span_two_cursors() {
    let rig = Rig::with_children(&[1, 2]);
    let (batch, root) = rig.batch(AbortPolicy);
    let a = root.children();
    let b = root.children();
    // a.add(&b) would need the call to iterate two arrays at once.
    let _sum = a.add(&b);
    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("two different cursors"), "{err}");
}

#[test]
fn cursor_mutations_hit_every_element() {
    let rig = Rig::with_children(&[1, 2, 3]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    cursor.set_value(7);
    batch.flush().unwrap();
    for child in rig.root.children.lock().iter() {
        assert_eq!(*child.value.lock(), 7);
    }
}
