//! Failure handling: transport errors surface at `flush` (paper §3.3), and
//! batches behave sanely over faulty links and real TCP.

mod common;

use std::sync::Arc;

use brmi::policy::AbortPolicy;
use brmi::{Batch, BatchExecutor};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::fault::{FaultPlan, FaultyTransport};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::tcp::{TcpServer, TcpTransport};
use brmi_wire::RemoteErrorKind;
use common::{BNode, NodeSkeleton, NodeStub, TestNode};

fn faulty_rig(plan: FaultPlan) -> (Connection, brmi_rmi::RemoteRef) {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let id = server
        .bind("root", NodeSkeleton::remote_arc(TestNode::new("n0", 7)))
        .unwrap();
    let transport = FaultyTransport::new(InProcTransport::new(server.clone()), plan);
    let conn = Connection::new(transport);
    let reference = conn.reference(id);
    (conn, reference)
}

#[test]
fn transport_error_surfaces_at_flush_and_fails_futures() {
    let (conn, reference) = faulty_rig(FaultPlan::Always);
    let batch = Batch::new(conn, AbortPolicy);
    let root = BNode::new(&batch, &reference);
    let name = root.name();
    let value = root.value();

    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Transport);
    // Every future of the failed segment carries the same error.
    assert_eq!(name.get().unwrap_err().kind(), RemoteErrorKind::Transport);
    assert_eq!(value.get().unwrap_err().kind(), RemoteErrorKind::Transport);
    assert!(batch.is_finished());
}

#[test]
fn rmi_fails_per_call_brmi_fails_per_batch() {
    // With a link that fails the 2nd request: RMI loses one call of many,
    // BRMI loses either everything (its single trip fails) or nothing.
    let (conn, reference) = faulty_rig(FaultPlan::OnNth(2));
    let stub = NodeStub::new(reference.clone());
    assert!(stub.value().is_ok()); // request 1
    assert!(stub.value().is_err()); // request 2: injected fault
    assert!(stub.value().is_ok()); // request 3

    let batch = Batch::new(conn, AbortPolicy);
    let root = BNode::new(&batch, &reference);
    let a = root.value();
    let b = root.name();
    batch.flush().unwrap(); // request 4: one trip, both results
    assert_eq!(a.get().unwrap(), 7);
    assert_eq!(b.get().unwrap(), "n0");
}

#[test]
fn chained_batch_recovers_nothing_after_transport_loss() {
    let (conn, reference) = faulty_rig(FaultPlan::OnNth(2));
    let batch = Batch::new(conn, AbortPolicy);
    let root = BNode::new(&batch, &reference);
    let _ = root.value();
    batch.flush_and_continue().unwrap(); // request 1 ok
    let late = root.value();
    let err = batch.flush().unwrap_err(); // request 2 fails
    assert_eq!(err.kind(), RemoteErrorKind::Transport);
    assert_eq!(late.get().unwrap_err().kind(), RemoteErrorKind::Transport);
    assert!(batch.is_finished());
    // Recording afterwards stays failed, no panic.
    let post = root.value();
    assert!(post.get().is_err());
}

#[test]
fn batching_works_over_real_tcp() {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let root = TestNode::new("n0", 10);
    *root.next.lock() = Some(TestNode::new("n1", 32));
    server.bind("root", NodeSkeleton::remote_arc(root)).unwrap();

    let tcp = TcpServer::bind("127.0.0.1:0", server.clone()).unwrap();
    let transport = TcpTransport::connect(tcp.local_addr()).unwrap();
    let conn = Connection::new(Arc::new(transport));
    let reference = conn.lookup("root").unwrap();

    // RMI over TCP.
    let stub = NodeStub::new(reference.clone());
    assert_eq!(stub.value().unwrap(), 10);

    // BRMI over TCP, with chained results and identity.
    let batch = Batch::new(conn, AbortPolicy);
    let broot = BNode::new(&batch, &reference);
    let next = broot.next();
    let sum = broot.add(&next);
    let same = broot.is_same(&next);
    batch.flush().unwrap();
    assert_eq!(sum.get().unwrap(), 42);
    assert!(same.get().unwrap());
}

#[test]
fn chained_batches_work_over_real_tcp() {
    let server = RmiServer::new();
    let executor = BatchExecutor::install(&server);
    let root = TestNode::new("root", 0);
    *root.children.lock() = vec![TestNode::new("c0", 3), TestNode::new("c1", 30)];
    server
        .bind("root", NodeSkeleton::remote_arc(root.clone()))
        .unwrap();

    let tcp = TcpServer::bind("127.0.0.1:0", server.clone()).unwrap();
    let conn = Connection::new(Arc::new(TcpTransport::connect(tcp.local_addr()).unwrap()));
    let reference = conn.lookup("root").unwrap();

    let batch = Batch::new(conn, AbortPolicy);
    let broot = BNode::new(&batch, &reference);
    let cursor = broot.children();
    let value = cursor.value();
    batch.flush_and_continue().unwrap();
    while cursor.advance() {
        if value.get().unwrap() >= 10 {
            cursor.set_value(-1);
        }
    }
    batch.flush().unwrap();
    assert_eq!(executor.session_count(), 0);
    let values: Vec<i32> = root
        .children
        .lock()
        .iter()
        .map(|c| *c.value.lock())
        .collect();
    assert_eq!(values, vec![3, -1]);
}

#[test]
fn server_without_batch_support_rejects_flush() {
    let server = RmiServer::new(); // no BatchExecutor installed
    let id = server
        .bind("root", NodeSkeleton::remote_arc(TestNode::new("n0", 1)))
        .unwrap();
    let conn = Connection::new(Arc::new(InProcTransport::new(server.clone())));
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let root = BNode::new(&batch, &conn.reference(id));
    let value = root.value();
    let err = batch.flush().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
    assert!(err.message().contains("no batch support"));
    assert!(value.get().is_err());
}
