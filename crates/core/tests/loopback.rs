//! Generated loopback-proxy behaviour (paper Section 4.4, RMI side): a
//! stub marshalled back to its own server becomes a proxy that re-enters
//! the middleware for every call, chains through remote returns, and walks
//! remote arrays as arrays of proxies.

mod common;

use brmi::policy::AbortPolicy;
use common::{Rig, TestNode};

#[test]
fn loopback_proxy_chains_remote_returns() {
    // Server-side: other.next().value() where `other` is a proxy —
    // each hop is one loopback call (next, then value on the new proxy).
    let rig = Rig::chain(&[1, 2, 30]);
    let root = rig.rmi_root();
    let n1 = root.next().unwrap();
    let before = rig.server.loopback_calls();
    let value = root.next_value_of(&n1).unwrap();
    assert_eq!(value, 30);
    assert_eq!(
        rig.server.loopback_calls(),
        before + 2,
        "next() through the proxy, then value() through the derived proxy"
    );
}

#[test]
fn loopback_proxy_walks_remote_arrays() {
    let rig = Rig::with_children(&[5, 6, 7]);
    // Export a second node pointing at the same root to act as the arg.
    let root_as_arg = rig.rmi_root();
    let before = rig.server.loopback_calls();
    let sum = root_as_arg.sum_children_of(&root_as_arg.clone()).unwrap();
    assert_eq!(sum, 18);
    // children() via the proxy (1) + value() on three element proxies (3).
    assert_eq!(rig.server.loopback_calls(), before + 4);
}

#[test]
fn brmi_avoids_all_loopback_for_the_same_scenarios() {
    let rig = Rig::chain(&[1, 2, 30]);
    *rig.root.children.lock() = vec![TestNode::new("c0", 5), TestNode::new("c1", 6)];
    let (batch, root) = rig.batch(AbortPolicy);
    let n1 = root.next();
    let deep = root.next_value_of(&n1);
    let sum = root.sum_children_of(&root.clone());
    batch.flush().unwrap();
    assert_eq!(deep.get().unwrap(), 30);
    assert_eq!(sum.get().unwrap(), 11);
    assert_eq!(rig.server.loopback_calls(), 0);
}

#[test]
fn loopback_errors_propagate_to_the_rmi_caller() {
    // other.next() fails at the tail; the proxy surfaces the application
    // exception through the outer call.
    let rig = Rig::chain(&[1, 2]);
    let root = rig.rmi_root();
    let n1 = root.next().unwrap();
    let err = root.next_value_of(&n1).unwrap_err();
    common::assert_app_error(&err, "NoNextNode");
}

#[test]
fn loopback_proxy_value_args_round_trip() {
    // add(other) passes a value-returning call through the proxy; the
    // result must match BRMI's and direct execution.
    let rig = Rig::chain(&[40, 2]);
    let root = rig.rmi_root();
    let n1 = root.next().unwrap();
    assert_eq!(root.add(&n1).unwrap(), 42);

    let (batch, broot) = rig.batch(AbortPolicy);
    let bn1 = broot.next();
    let sum = broot.add(&bn1);
    batch.flush().unwrap();
    assert_eq!(sum.get().unwrap(), 42);
}
