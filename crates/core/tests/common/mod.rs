//! Shared fixture for the BRMI integration tests: a small graph service
//! exercising every interface feature (values, remote results, arrays,
//! remote arguments, failures with controllable behaviour).
#![allow(dead_code)] // each test file uses a different subset of the fixture

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use brmi::{remote_interface, Batch, BatchExecutor};
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::TransportStats;
use brmi_wire::invocation::PolicySpec;
use brmi_wire::{RemoteError, RemoteErrorKind};
use parking_lot::Mutex;

remote_interface! {
    /// A node in a remote graph.
    pub interface Node {
        #[read_only]
        fn name() -> String;
        #[read_only]
        fn value() -> i32;
        fn set_value(v: i32);
        fn next() -> remote Node;
        fn children() -> remote_array Node;
        fn fail_with(exception: String) -> i32;
        fn add(other: remote Node) -> i32;
        fn is_same(other: remote Node) -> bool;
        fn flaky(succeed_after: i32) -> i32;
        fn next_value_of(other: remote Node) -> i32;
        fn sum_children_of(other: remote Node) -> i32;
    }
}

/// Test implementation of [`Node`].
pub struct TestNode {
    pub name: String,
    pub value: Mutex<i32>,
    pub next: Mutex<Option<Arc<TestNode>>>,
    pub children: Mutex<Vec<Arc<TestNode>>>,
    pub attempts: AtomicU32,
    pub calls: AtomicU32,
}

impl TestNode {
    pub fn new(name: &str, value: i32) -> Arc<Self> {
        Arc::new(TestNode {
            name: name.to_owned(),
            value: Mutex::new(value),
            next: Mutex::new(None),
            children: Mutex::new(Vec::new()),
            attempts: AtomicU32::new(0),
            calls: AtomicU32::new(0),
        })
    }
}

impl Node for TestNode {
    fn name(&self) -> Result<String, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(self.name.clone())
    }

    fn value(&self) -> Result<i32, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(*self.value.lock())
    }

    fn set_value(&self, v: i32) -> Result<(), RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        *self.value.lock() = v;
        Ok(())
    }

    fn next(&self) -> Result<Arc<dyn Node>, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        match self.next.lock().clone() {
            Some(node) => Ok(node),
            None => Err(RemoteError::application(
                "NoNextNode",
                format!("node {} has no successor", self.name),
            )),
        }
    }

    fn children(&self) -> Result<Vec<Arc<dyn Node>>, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .children
            .lock()
            .iter()
            .cloned()
            .map(|child| child as Arc<dyn Node>)
            .collect())
    }

    fn fail_with(&self, exception: String) -> Result<i32, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Err(RemoteError::application(exception, "requested failure"))
    }

    fn add(&self, other: Arc<dyn Node>) -> Result<i32, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        // Copy before calling out: `other` may be this very node (both via
        // a loopback proxy under RMI and by identity preservation under
        // BRMI), and the value mutex is not reentrant.
        let mine = *self.value.lock();
        Ok(mine + other.value()?)
    }

    /// The paper's RemoteIdentity check (Section 4.4): is `other` the very
    /// object this node's `next()` returned (not a marshalled stub of it)?
    fn is_same(&self, other: Arc<dyn Node>) -> Result<bool, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let stored =
            self.next.lock().clone().ok_or_else(|| {
                RemoteError::application("NoNextNode", "nothing to compare against")
            })?;
        let stored_ptr = Arc::as_ptr(&stored) as *const ();
        let other_ptr = Arc::as_ptr(&other) as *const ();
        Ok(std::ptr::eq(stored_ptr, other_ptr))
    }

    /// Navigates `other.next()` server-side, then reads its value. Under
    /// RMI `other` is a loopback proxy, so this exercises the proxy's
    /// remote-returning path (a proxy that yields another proxy).
    fn next_value_of(&self, other: Arc<dyn Node>) -> Result<i32, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        other.next()?.value()
    }

    /// Sums `other.children()` values server-side; under RMI this walks an
    /// array of loopback proxies.
    fn sum_children_of(&self, other: Arc<dyn Node>) -> Result<i32, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut sum = 0;
        for child in other.children()? {
            sum += child.value()?;
        }
        Ok(sum)
    }

    fn flaky(&self, succeed_after: i32) -> Result<i32, RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed) + 1;
        if i64::from(attempt) > i64::from(succeed_after) {
            Ok(attempt as i32)
        } else {
            Err(RemoteError::application(
                "FlakyError",
                format!("attempt {attempt} of {succeed_after}"),
            ))
        }
    }
}

/// A full test rig: server, transport, connection and the exported root.
pub struct Rig {
    pub server: Arc<RmiServer>,
    pub executor: Arc<BatchExecutor>,
    pub conn: Connection,
    pub root: Arc<TestNode>,
    pub root_ref: RemoteRef,
    pub stats: Arc<TransportStats>,
}

impl Rig {
    /// Builds a rig around the given root node.
    pub fn with_root(root: Arc<TestNode>) -> Rig {
        let server = RmiServer::new();
        let executor = BatchExecutor::install(&server);
        let id = server
            .bind("root", NodeSkeleton::remote_arc(root.clone()))
            .expect("bind root");
        let transport = InProcTransport::new(server.clone());
        let stats = transport.stats();
        let conn = Connection::new(Arc::new(transport));
        let root_ref = conn.reference(id);
        Rig {
            server,
            executor,
            conn,
            root,
            root_ref,
            stats,
        }
    }

    /// A root with a chain `root -> n1 -> n2 -> ...` of the given values.
    pub fn chain(values: &[i32]) -> Rig {
        let root = TestNode::new("n0", values[0]);
        let mut prev = root.clone();
        for (i, &v) in values.iter().enumerate().skip(1) {
            let node = TestNode::new(&format!("n{i}"), v);
            *prev.next.lock() = Some(node.clone());
            prev = node;
        }
        Rig::with_root(root)
    }

    /// A root with children of the given values (named `c0`, `c1`, ...).
    pub fn with_children(values: &[i32]) -> Rig {
        let root = TestNode::new("root", 0);
        let children: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| TestNode::new(&format!("c{i}"), v))
            .collect();
        *root.children.lock() = children;
        Rig::with_root(root)
    }

    /// Starts a batch with the given policy and returns the typed root.
    pub fn batch(&self, policy: impl Into<PolicySpec>) -> (Batch, BNode) {
        let batch = Batch::new(self.conn.clone(), policy);
        let root = BNode::new(&batch, &self.root_ref);
        (batch, root)
    }

    /// A plain RMI stub for the root.
    pub fn rmi_root(&self) -> NodeStub {
        NodeStub::new(self.root_ref.clone())
    }
}

/// Asserts that an error is the named application exception.
pub fn assert_app_error(err: &RemoteError, exception: &str) {
    assert_eq!(err.kind(), RemoteErrorKind::Application, "err: {err}");
    assert_eq!(err.exception(), exception, "err: {err}");
}
