//! Exception policies (paper Section 3.3): Abort, Continue and Custom with
//! Break / Continue / Repeat / Restart actions, plus dependency skipping.

mod common;

use brmi::policy::{AbortPolicy, ContinuePolicy, CustomPolicy};
use brmi_wire::invocation::ExceptionAction;
use common::Rig;

#[test]
fn abort_policy_skips_everything_after_the_failure() {
    let rig = Rig::chain(&[10]);
    let (batch, root) = rig.batch(AbortPolicy);
    let before = root.value();
    let failing = root.fail_with("Boom".into());
    let after = root.name();
    batch.flush().unwrap();

    assert_eq!(before.get().unwrap(), 10);
    common::assert_app_error(&failing.get().unwrap_err(), "Boom");
    // Skipped calls re-throw the root cause.
    common::assert_app_error(&after.get().unwrap_err(), "Boom");
    // The skipped call never reached the server method.
    assert_eq!(rig.root.calls.load(std::sync::atomic::Ordering::Relaxed), 2);
}

#[test]
fn continue_policy_executes_later_calls() {
    let rig = Rig::chain(&[10]);
    let (batch, root) = rig.batch(ContinuePolicy);
    let failing = root.fail_with("Boom".into());
    let after = root.value();
    batch.flush().unwrap();
    common::assert_app_error(&failing.get().unwrap_err(), "Boom");
    assert_eq!(after.get().unwrap(), 10);
}

#[test]
fn continue_policy_still_skips_dependents() {
    // Even under Continue, calls on a failed call's result cannot run.
    let rig = Rig::chain(&[10]); // n0 has no successor
    let (batch, root) = rig.batch(ContinuePolicy);
    let broken = root.next();
    let dependent = broken.value();
    let independent = root.value();
    batch.flush().unwrap();
    common::assert_app_error(&dependent.get().unwrap_err(), "NoNextNode");
    assert_eq!(independent.get().unwrap(), 10);
}

#[test]
fn custom_policy_breaks_only_on_selected_exception() {
    // The bank pattern: continue by default, break on one named failure.
    let mut policy = CustomPolicy::new();
    policy.set_default_action(ExceptionAction::Continue);
    policy.on_exception("Fatal", ExceptionAction::Break);

    let rig = Rig::chain(&[10]);
    let (batch, root) = rig.batch(policy);
    let minor = root.fail_with("Minor".into());
    let mid = root.value();
    let fatal = root.fail_with("Fatal".into());
    let after = root.value();
    batch.flush().unwrap();

    common::assert_app_error(&minor.get().unwrap_err(), "Minor");
    assert_eq!(mid.get().unwrap(), 10);
    common::assert_app_error(&fatal.get().unwrap_err(), "Fatal");
    common::assert_app_error(&after.get().unwrap_err(), "Fatal");
}

#[test]
fn custom_policy_matches_method_and_index() {
    let mut policy = CustomPolicy::new();
    policy.set_default_action(ExceptionAction::Continue);
    // Only position 0 breaking mirrors the paper's bank lookup rule.
    policy.set_action(
        "Boom",
        common::NodeSkeleton::METHOD_FAIL_WITH,
        0,
        ExceptionAction::Break,
    );

    let rig = Rig::chain(&[10]);
    let (batch, root) = rig.batch(policy.clone());
    let first = root.fail_with("Boom".into());
    let after = root.value();
    batch.flush().unwrap();
    common::assert_app_error(&first.get().unwrap_err(), "Boom");
    common::assert_app_error(&after.get().unwrap_err(), "Boom");

    // Same failure at position 1 falls to the Continue default.
    let (batch, root) = rig.batch(policy);
    let _pad = root.value();
    let second = root.fail_with("Boom".into());
    let after = root.value();
    batch.flush().unwrap();
    common::assert_app_error(&second.get().unwrap_err(), "Boom");
    assert_eq!(after.get().unwrap(), 10);
}

#[test]
fn repeat_action_retries_until_success() {
    let mut policy = CustomPolicy::new();
    policy.on_exception("FlakyError", ExceptionAction::Repeat);

    let rig = Rig::chain(&[10]);
    let (batch, root) = rig.batch(policy);
    // Fails twice, succeeds on attempt 3 (within the bound of 3 repeats).
    let result = root.flaky(2);
    batch.flush().unwrap();
    assert_eq!(result.get().unwrap(), 3);
}

#[test]
fn repeat_action_gives_up_after_the_bound() {
    let mut policy = CustomPolicy::new();
    policy.on_exception("FlakyError", ExceptionAction::Repeat);

    let rig = Rig::chain(&[10]);
    let (batch, root) = rig.batch(policy);
    // Needs 10 attempts; the executor allows 1 + 3 repeats.
    let result = root.flaky(10);
    let after = root.value();
    batch.flush().unwrap();
    common::assert_app_error(&result.get().unwrap_err(), "FlakyError");
    // Exhausted repeats degrade to Break.
    common::assert_app_error(&after.get().unwrap_err(), "FlakyError");
    assert_eq!(
        rig.root.attempts.load(std::sync::atomic::Ordering::Relaxed),
        4,
        "one initial try plus three repeats"
    );
}

#[test]
fn restart_action_replays_the_batch() {
    let mut policy = CustomPolicy::new();
    policy.on_exception("FlakyError", ExceptionAction::Restart);

    let rig = Rig::chain(&[0]);
    let (batch, root) = rig.batch(policy);
    root.set_value(1);
    // Fails on the first full pass, succeeds after one restart.
    let flaky = root.flaky(1);
    batch.flush().unwrap();
    assert_eq!(flaky.get().unwrap(), 2);
    assert_eq!(batch.stats().server_restarts, 1);
    // The restart re-ran the whole batch, including set_value.
    assert!(
        rig.root.calls.load(std::sync::atomic::Ordering::Relaxed) >= 3,
        "set_value executed on both passes"
    );
}

#[test]
fn restart_action_gives_up_after_the_bound() {
    let mut policy = CustomPolicy::new();
    policy.on_exception("FlakyError", ExceptionAction::Restart);

    let rig = Rig::chain(&[0]);
    let (batch, root) = rig.batch(policy);
    let flaky = root.flaky(100); // never recovers within 3 restarts
    batch.flush().unwrap();
    common::assert_app_error(&flaky.get().unwrap_err(), "FlakyError");
    assert_eq!(batch.stats().server_restarts, 3);
}

#[test]
fn middleware_faults_respect_policies_too() {
    // A reference to an unexported object is a NoSuchObject fault; under
    // Continue the rest of the batch still runs.
    use brmi::Batch;
    use common::BNode;

    let rig = Rig::chain(&[10]);
    let bogus_ref = rig.conn.reference(brmi_wire::ObjectId(999));
    let batch = Batch::new(rig.conn.clone(), ContinuePolicy);
    let bogus = BNode::new(&batch, &bogus_ref);
    let root = BNode::new(&batch, &rig.root_ref);
    let broken = bogus.value();
    let fine = root.value();
    batch.flush().unwrap();
    assert_eq!(
        broken.get().unwrap_err().kind(),
        brmi_wire::RemoteErrorKind::NoSuchObject
    );
    assert_eq!(fine.get().unwrap(), 10);
}
