//! The two `Batch` hooks added for runtimes layered over explicit
//! batching (`brmi-implicit` is the in-tree consumer):
//! `first_failure_from` and `discard_pending`.

mod common;

use brmi::policy::{AbortPolicy, ContinuePolicy};
use brmi_wire::{RemoteError, RemoteErrorKind};
use common::{assert_app_error, Rig, TestNode};

#[test]
fn first_failure_reports_nothing_before_flush() {
    let rig = Rig::chain(&[1, 2]);
    let (batch, root) = rig.batch(AbortPolicy);
    let _pending = root.value();
    assert!(batch.first_failure_from(0).is_none(), "pending ≠ failed");
}

#[test]
fn first_failure_is_the_earliest_one() {
    let rig = Rig::chain(&[1, 2]);
    let (batch, root) = rig.batch(ContinuePolicy);
    let _ok = root.value(); // seq 0
    let _first = root.fail_with("First".into()); // seq 1
    let _second = root.fail_with("Second".into()); // seq 2
    batch.flush().unwrap();
    let err = batch.first_failure_from(0).expect("failures exist");
    assert_app_error(&err, "First");
}

#[test]
fn first_failure_respects_the_watermark() {
    let rig = Rig::chain(&[1, 2]);
    let (batch, root) = rig.batch(ContinuePolicy);
    let _first = root.fail_with("First".into()); // seq 0
    let _second = root.fail_with("Second".into()); // seq 1
    batch.flush().unwrap();
    let err = batch.first_failure_from(1).expect("second failure visible");
    assert_app_error(&err, "Second");
    assert!(batch.first_failure_from(2).is_none());
}

#[test]
fn abort_skips_count_as_failures_with_the_original_cause() {
    let rig = Rig::chain(&[1, 2]);
    let (batch, root) = rig.batch(AbortPolicy);
    let _boom = root.fail_with("Boom".into()); // seq 0
    let skipped = root.value(); // seq 1: skipped by the abort
    batch.flush().unwrap();
    assert_app_error(&skipped.get().unwrap_err(), "Boom");
    let err = batch.first_failure_from(1).expect("skip recorded");
    assert_app_error(&err, "Boom");
}

#[test]
fn discard_pending_fails_futures_without_contacting_the_server() {
    let rig = Rig::chain(&[5, 6]);
    let (batch, root) = rig.batch(AbortPolicy);
    let a = root.value();
    let b = root.name();
    rig.stats.reset();
    let reason = RemoteError::application("Discarded", "speculative");
    assert_eq!(batch.discard_pending(&reason), 2);
    assert_eq!(rig.stats.requests(), 0, "purely client-side");
    assert_app_error(&a.get().unwrap_err(), "Discarded");
    assert_app_error(&b.get().unwrap_err(), "Discarded");
    assert_eq!(rig.root.calls.load(std::sync::atomic::Ordering::Relaxed), 0);
}

#[test]
fn discard_pending_keeps_the_batch_usable() {
    let rig = Rig::chain(&[5, 6]);
    let (batch, root) = rig.batch(AbortPolicy);
    let doomed = root.value();
    let reason = RemoteError::application("Discarded", "speculative");
    batch.discard_pending(&reason);

    // New calls record and flush normally.
    let fresh = root.value();
    batch.flush().unwrap();
    assert_eq!(fresh.get().unwrap(), 5);
    assert_app_error(&doomed.get().unwrap_err(), "Discarded");
}

#[test]
fn discard_pending_preserves_flushed_results_and_session() {
    let rig = Rig::chain(&[7, 8]);
    let (batch, root) = rig.batch(AbortPolicy);
    let second = root.next();
    let kept = second.value();
    batch.flush_and_continue().unwrap();
    assert_eq!(kept.get().unwrap(), 8);
    let session = batch.session().expect("chained session live");

    let doomed = second.value();
    batch.discard_pending(&RemoteError::application("Discarded", "x"));
    assert_eq!(batch.session(), Some(session), "session untouched");
    assert_eq!(kept.get().unwrap(), 8, "resolved futures untouched");
    assert!(doomed.get().is_err());

    // The chained stub still works in a later segment.
    let again = second.value();
    batch.flush().unwrap();
    assert_eq!(again.get().unwrap(), 8);
}

#[test]
fn discard_pending_on_empty_batch_is_a_noop() {
    let rig = Rig::chain(&[1]);
    let (batch, _root) = rig.batch(AbortPolicy);
    assert_eq!(
        batch.discard_pending(&RemoteError::new(RemoteErrorKind::Protocol, "x")),
        0
    );
    batch.flush().unwrap();
}

#[test]
fn discarded_cursor_cannot_be_reused() {
    let rig = Rig::with_children(&[1, 2, 3]);
    let (batch, root) = rig.batch(AbortPolicy);
    let cursor = root.children();
    let _name = cursor.name();
    batch.discard_pending(&RemoteError::application("Discarded", "x"));
    // Recording on the discarded cursor is a contiguity/closed error that
    // poisons the batch rather than silently re-recording.
    let _late = cursor.value();
    assert!(batch.flush().is_err());
}

#[test]
fn first_failure_sees_recording_poison_too() {
    let rig = Rig::chain(&[1]);
    let (batch, root) = rig.batch(AbortPolicy);
    let other_rig = Rig::chain(&[9]);
    let (_other_batch, other_root) = other_rig.batch(AbortPolicy);
    // A foreign stub poisons the recording; the pre-failed slot is
    // visible to the failure scan immediately.
    let _bad = root.add(&other_root);
    assert!(batch.first_failure_from(0).is_some());
    let _ = TestNode::new("unused", 0);
}
