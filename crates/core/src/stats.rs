//! Per-batch statistics, used by the benchmark harness and by tests that
//! assert round-trip counts.

/// Counters accumulated over the life of one [`Batch`](crate::Batch) chain.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Method calls recorded by invocation monitoring (including calls
    /// whose recording failed; their futures hold the recording error).
    pub calls_recorded: u64,
    /// Successful `flush`/`flush_and_continue` round trips.
    pub flushes: u64,
    /// How many of those kept the server session alive.
    pub chained_flushes: u64,
    /// Cursors opened.
    pub cursors_created: u64,
    /// Batch restarts performed by the server (Restart exception action).
    pub server_restarts: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let stats = BatchStats::default();
        assert_eq!(stats.calls_recorded, 0);
        assert_eq!(stats.flushes, 0);
        assert_eq!(stats.chained_flushes, 0);
        assert_eq!(stats.cursors_created, 0);
        assert_eq!(stats.server_restarts, 0);
    }
}
