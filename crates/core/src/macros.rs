//! The `remote_interface!` interface generator.
//!
//! The paper ships a tool (`rmic -batch`) that mechanically derives batch
//! and cursor interfaces from remote interfaces (Section 3.2). Rust has no
//! runtime proxying, so this macro *is* that tool, run at compile time. One
//! invocation
//!
//! ```
//! use brmi::remote_interface;
//!
//! remote_interface! {
//!     /// A file in a remote filesystem.
//!     pub interface File {
//!         fn get_name() -> String;
//!         fn get_size() -> i64;
//!         fn delete();
//!     }
//! }
//! ```
//!
//! generates seven items, following the paper's naming convention:
//!
//! | item | role |
//! |---|---|
//! | `trait File` | server-side service trait (the remote interface) |
//! | `FileSkeleton` | dispatch glue implementing [`RemoteObject`] |
//! | `FileStub` | typed RMI client stub (one round trip per call) |
//! | `FileLoopback` | server-side proxy for a stub marshalled home (RMI identity semantics, Section 4.4) |
//! | `BFile` | batch interface: methods record and return futures/stubs |
//! | `CFile` | cursor interface over `remote_array File` results (Section 3.4) |
//! | `impl Companions for dyn File` | compile-time link between the trait and its generated types |
//!
//! ## Method grammar
//!
//! * `fn m(a: T, ...) -> T;` — a by-copy result (`T: ToValue + FromValue`);
//!   the batch interface returns `BatchFuture<T>`.
//! * `fn m(...);` — void; the batch interface returns `BatchFuture<()>`.
//! * `fn m(...) -> remote I;` — a remote-object result; the batch
//!   interface returns `BI`.
//! * `fn m(...) -> remote_array I;` — an array of remote objects; the
//!   batch interface returns the cursor `CI`.
//! * argument `a: remote I` — a remote-object parameter; the RMI stub
//!   takes `&IStub`, the batch interface takes any
//!   [`BatchParam<dyn I>`](crate::BatchParam) (a `BI` or a `CI`).
//!
//! ## Method metadata and `#[read_only]`
//!
//! A method may be declared read-only by adding a `#[read_only]` marker
//! anywhere among its attributes — conventionally after the doc comments,
//! but either order is accepted:
//!
//! ```
//! use brmi::remote_interface;
//!
//! remote_interface! {
//!     pub interface Account {
//!         /// Never mutates server state: cacheable and retry-safe.
//!         #[read_only]
//!         fn get_balance() -> f64;
//!         fn deposit(amount: f64);
//!     }
//! }
//! ```
//!
//! Every method — annotated or not — is compiled into a
//! [`MethodMeta`](brmi_wire::MethodMeta) descriptor (name, mutability,
//! arity, result kind). The table is reachable three ways:
//!
//! * `AccountSkeleton::METHOD_META` — the full table, in declaration
//!   order, plus one `AccountSkeleton::METHOD_GET_BALANCE`-style constant
//!   per method (for exception-policy rules);
//! * `<dyn Account as Companions>::interface_meta()` — the
//!   [`InterfaceMeta`](brmi_wire::InterfaceMeta) used to feed a
//!   [`MethodRegistry`](brmi_wire::MethodRegistry) for the relay tier;
//! * [`RemoteObject::method_meta`] — per-object lookup, consulted by the
//!   batch executor at dispatch time.
//!
//! `#[read_only]` is a promise, not a proof: the middleware trusts it the
//! way the paper trusts interface declarations. A read-only method's
//! result may be served from the relay-tier read cache and its failures
//! are safe to retry, so annotating a mutating method is an application
//! bug. The promise also covers *aliasing*: cache invalidation is
//! per-target-object, so only annotate methods whose results depend
//! solely on state mutated through their own object. An aggregate read
//! whose backing state is edited via sibling objects (a directory count
//! changed by deleting a *file*) must stay unannotated — or its writers
//! must invalidate explicitly at the fetcher tier.
//!
//! [`RemoteObject`]: brmi_rmi::RemoteObject
//! [`RemoteObject::method_meta`]: brmi_rmi::RemoteObject::method_meta

/// Generates the server trait, skeleton, RMI stub, loopback proxy, batch
/// interface and cursor interface for one remote interface. See the
/// [module documentation](self) for the grammar.
#[macro_export]
macro_rules! remote_interface {
    // ---------------------------------------------------------------
    // Entry: munch methods, normalizing each into
    //   [ #[meta]* fn name ro(true|false) ret(...) args((v a Ty)|(r a Iface)...) ]
    // ---------------------------------------------------------------
    (
        $(#[$imeta:meta])*
        pub interface $I:ident { $($methods:tt)* }
    ) => {
        $crate::remote_interface!(@methods [$(#[$imeta])*] $I {} $($methods)*);
    };

    (@methods [$($imeta:tt)*] $I:ident {$($acc:tt)*}) => {
        $crate::remote_interface!(@emit [$($imeta)*] $I {$($acc)*});
    };
    // Every method first passes through the attribute muncher below, which
    // lifts `#[read_only]` out of the attribute list wherever it appears —
    // before or after doc comments — so declarations can follow the
    // conventional docs-first Rust style.
    (@methods [$($imeta:tt)*] $I:ident {$($acc:tt)*} $($rest:tt)+) => {
        $crate::remote_interface!(@mattrs [$($imeta)*] $I {$($acc)*} [] ro(false) $($rest)+);
    };

    // ---------------------------------------------------------------
    // Per-method attribute munching: one attribute at a time, keeping
    // ordinary metas (doc comments included) in order and folding each
    // `#[read_only]` marker into the ro(..) flag. The literal arm must
    // stay above the `$meta:meta` arm or the general one would swallow
    // the marker and re-emit it on generated items.
    // ---------------------------------------------------------------
    (@mattrs [$($imeta:tt)*] $I:ident {$($acc:tt)*} [$($mm:tt)*] ro($ro:tt)
        #[read_only] $($rest:tt)*
    ) => {
        $crate::remote_interface!(@mattrs [$($imeta)*] $I {$($acc)*} [$($mm)*] ro(true) $($rest)*);
    };
    (@mattrs [$($imeta:tt)*] $I:ident {$($acc:tt)*} [$($mm:tt)*] ro($ro:tt)
        #[$meta:meta] $($rest:tt)*
    ) => {
        $crate::remote_interface!(@mattrs [$($imeta)*] $I {$($acc)*}
            [$($mm)* #[$meta]] ro($ro) $($rest)*);
    };
    // remote-returning
    (@mattrs [$($imeta:tt)*] $I:ident {$($acc:tt)*} [$($mm:tt)*] ro($ro:tt)
        fn $m:ident ($($args:tt)*) -> remote $R:ident ; $($rest:tt)*
    ) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*}
            {$($mm)* fn $m ro($ro) ret(remote $R)} [] ($($args)*) ; $($rest)*);
    };
    // array-returning (cursor)
    (@mattrs [$($imeta:tt)*] $I:ident {$($acc:tt)*} [$($mm:tt)*] ro($ro:tt)
        fn $m:ident ($($args:tt)*) -> remote_array $R:ident ; $($rest:tt)*
    ) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*}
            {$($mm)* fn $m ro($ro) ret(array $R)} [] ($($args)*) ; $($rest)*);
    };
    // value-returning
    (@mattrs [$($imeta:tt)*] $I:ident {$($acc:tt)*} [$($mm:tt)*] ro($ro:tt)
        fn $m:ident ($($args:tt)*) -> $T:ty ; $($rest:tt)*
    ) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*}
            {$($mm)* fn $m ro($ro) ret(value $T)} [] ($($args)*) ; $($rest)*);
    };
    // void (`#[read_only]` on a void method is legal but pointless)
    (@mattrs [$($imeta:tt)*] $I:ident {$($acc:tt)*} [$($mm:tt)*] ro($ro:tt)
        fn $m:ident ($($args:tt)*) ; $($rest:tt)*
    ) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*}
            {$($mm)* fn $m ro($ro) ret(void)} [] ($($args)*) ; $($rest)*);
    };

    // ---------------------------------------------------------------
    // Argument normalization
    // ---------------------------------------------------------------
    (@normargs [$($imeta:tt)*] $I:ident {$($acc:tt)*} {$($head:tt)*} [$($aacc:tt)*] () ; $($rest:tt)*) => {
        $crate::remote_interface!(@methods [$($imeta)*] $I
            {$($acc)* [$($head)* args($($aacc)*)]} $($rest)*);
    };
    (@normargs [$($imeta:tt)*] $I:ident {$($acc:tt)*} {$($head:tt)*} [$($aacc:tt)*]
        ($a:ident : remote $R:ident , $($more:tt)+) ; $($rest:tt)*) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*} {$($head)*}
            [$($aacc)* (r $a $R)] ($($more)+) ; $($rest)*);
    };
    (@normargs [$($imeta:tt)*] $I:ident {$($acc:tt)*} {$($head:tt)*} [$($aacc:tt)*]
        ($a:ident : remote $R:ident) ; $($rest:tt)*) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*} {$($head)*}
            [$($aacc)* (r $a $R)] () ; $($rest)*);
    };
    (@normargs [$($imeta:tt)*] $I:ident {$($acc:tt)*} {$($head:tt)*} [$($aacc:tt)*]
        ($a:ident : $T:ty , $($more:tt)+) ; $($rest:tt)*) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*} {$($head)*}
            [$($aacc)* (v $a $T)] ($($more)+) ; $($rest)*);
    };
    (@normargs [$($imeta:tt)*] $I:ident {$($acc:tt)*} {$($head:tt)*} [$($aacc:tt)*]
        ($a:ident : $T:ty) ; $($rest:tt)*) => {
        $crate::remote_interface!(@normargs [$($imeta)*] $I {$($acc)*} {$($head)*}
            [$($aacc)* (v $a $T)] () ; $($rest)*);
    };

    // ---------------------------------------------------------------
    // Emission of the generated items
    // ---------------------------------------------------------------
    (@emit [$($imeta:tt)*] $I:ident {
        $( [ $(#[$mm:meta])* fn $m:ident ro($ro:tt) ret($($mret:tt)*) args($( ($at:ident $a:ident $($aty:tt)*) )*) ] )*
    }) => {
        $crate::__rt::paste! {
            // ------------------------- server trait -------------------------
            $($imeta)*
            pub trait $I: Send + Sync + 'static {
                $(
                    $(#[$mm])*
                    #[allow(clippy::too_many_arguments)]
                    fn $m(&self $(, $a: $crate::remote_interface!(@sv_arg_ty $at $($aty)*))*)
                        -> ::core::result::Result<
                            $crate::remote_interface!(@sv_ret_ty $($mret)*),
                            $crate::__rt::RemoteError,
                        >;
                )*
                /// The exported id this value stands for, when it is a
                /// marshalled stub rather than a local object.
                #[doc(hidden)]
                fn __remote_id(&self) -> ::core::option::Option<$crate::__rt::ObjectId> {
                    ::core::option::Option::None
                }
            }

            // --------------------------- skeleton ---------------------------
            #[doc = concat!("Dispatch glue exporting a [`", stringify!($I), "`] service.")]
            pub struct [<$I Skeleton>] {
                inner: $crate::__rt::Arc<dyn $I>,
            }

            impl [<$I Skeleton>] {
                /// Wraps a service implementation for export.
                pub fn new(inner: $crate::__rt::Arc<dyn $I>) -> $crate::__rt::Arc<Self> {
                    $crate::__rt::Arc::new(Self { inner })
                }

                /// Wraps a service implementation as a dispatchable remote
                /// object (what [`RmiServer::export`] takes).
                ///
                /// [`RmiServer::export`]: brmi_rmi::RmiServer::export
                pub fn remote_arc(
                    inner: $crate::__rt::Arc<dyn $I>,
                ) -> $crate::__rt::Arc<dyn $crate::__rt::RemoteObject> {
                    $crate::__rt::Arc::new(Self { inner })
                }

                /// The wrapped service.
                pub fn inner(&self) -> $crate::__rt::Arc<dyn $I> {
                    $crate::__rt::Arc::clone(&self.inner)
                }

                #[doc = concat!(
                    "Compile-time descriptors for every [`", stringify!($I),
                    "`] method, in declaration order."
                )]
                pub const METHOD_META: &'static [$crate::__rt::MethodMeta] = &[
                    $(
                        $crate::__rt::MethodMeta {
                            interface: stringify!($I),
                            name: stringify!($m),
                            read_only: $ro,
                            arity: $crate::remote_interface!(@count $( ($at) )*),
                            returns_remote:
                                $crate::remote_interface!(@returns_remote $($mret)*),
                        },
                    )*
                ];

                #[doc = concat!(
                    "The [`", stringify!($I), "`] method table as one ",
                    "queryable descriptor (feed it to a `MethodRegistry`)."
                )]
                pub const INTERFACE_META: &'static $crate::__rt::InterfaceMeta =
                    &$crate::__rt::InterfaceMeta {
                        interface: stringify!($I),
                        methods: Self::METHOD_META,
                    };

                $(
                    #[doc = concat!(
                        "Descriptor for [`", stringify!($I), "::",
                        stringify!($m), "`]."
                    )]
                    pub const [<METHOD_ $m:upper>]: &'static $crate::__rt::MethodMeta =
                        &$crate::__rt::MethodMeta {
                            interface: stringify!($I),
                            name: stringify!($m),
                            read_only: $ro,
                            arity: $crate::remote_interface!(@count $( ($at) )*),
                            returns_remote:
                                $crate::remote_interface!(@returns_remote $($mret)*),
                        };
                )*
            }

            impl ::std::fmt::Debug for [<$I Skeleton>] {
                fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                    f.debug_struct(stringify!([<$I Skeleton>])).finish_non_exhaustive()
                }
            }

            impl $crate::__rt::RemoteObject for [<$I Skeleton>] {
                fn interface_name(&self) -> &'static str {
                    stringify!($I)
                }

                #[allow(unused_mut, unused_variables)]
                fn invoke(
                    &self,
                    __method: &str,
                    __args: ::std::vec::Vec<$crate::__rt::InArg>,
                    __ctx: &$crate::__rt::CallCtx,
                ) -> ::core::result::Result<$crate::__rt::OutValue, $crate::__rt::RemoteError> {
                    $(
                        if __method == stringify!($m) {
                            const __ARITY: usize =
                                $crate::remote_interface!(@count $( ($at) )*);
                            if __args.len() != __ARITY {
                                return ::core::result::Result::Err($crate::__rt::bad_arity(
                                    stringify!($m),
                                    __ARITY,
                                    __args.len(),
                                ));
                            }
                            let mut __iter = __args.into_iter();
                            $(
                                let $a = $crate::remote_interface!(
                                    @extract_arg ($at $($aty)*) __iter __ctx
                                );
                            )*
                            let __ret = self.inner.$m($($a),*);
                            return $crate::remote_interface!(@wrap_ret ($($mret)*) __ret);
                        }
                    )*
                    ::core::result::Result::Err($crate::__rt::no_such_method(
                        stringify!($I),
                        __method,
                    ))
                }

                fn method_meta(
                    &self,
                    __method: &str,
                ) -> ::core::option::Option<&'static $crate::__rt::MethodMeta> {
                    Self::INTERFACE_META.method(__method)
                }

                fn as_any(&self) -> &dyn $crate::__rt::Any {
                    self
                }
            }

            // --------------------------- loopback ---------------------------
            #[doc = concat!(
                "Server-side proxy for a [`", stringify!($I), "`] stub that was ",
                "marshalled back to its own server (RMI identity semantics, paper §4.4)."
            )]
            pub struct [<$I Loopback>] {
                target: $crate::__rt::ObjectId,
                loopback: $crate::__rt::Arc<dyn $crate::__rt::Loopback>,
            }

            impl [<$I Loopback>] {
                #[doc(hidden)]
                pub fn new(
                    target: $crate::__rt::ObjectId,
                    loopback: $crate::__rt::Arc<dyn $crate::__rt::Loopback>,
                ) -> Self {
                    Self { target, loopback }
                }
            }

            impl ::std::fmt::Debug for [<$I Loopback>] {
                fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                    f.debug_struct(stringify!([<$I Loopback>]))
                        .field("target", &self.target)
                        .finish_non_exhaustive()
                }
            }

            impl $I for [<$I Loopback>] {
                $(
                    fn $m(&self $(, $a: $crate::remote_interface!(@sv_arg_ty $at $($aty)*))*)
                        -> ::core::result::Result<
                            $crate::remote_interface!(@sv_ret_ty $($mret)*),
                            $crate::__rt::RemoteError,
                        >
                    {
                        let __args: ::std::vec::Vec<$crate::__rt::Value> = ::std::vec![
                            $( $crate::remote_interface!(@loopback_arg_val ($at $($aty)*) $a) ),*
                        ];
                        let __v = self.loopback.invoke(self.target, stringify!($m), __args)?;
                        $crate::remote_interface!(@loopback_ret ($($mret)*) __v (&self.loopback))
                    }
                )*

                fn __remote_id(&self) -> ::core::option::Option<$crate::__rt::ObjectId> {
                    ::core::option::Option::Some(self.target)
                }
            }

            // --------------------------- RMI stub ---------------------------
            #[doc = concat!(
                "Typed RMI client stub for [`", stringify!($I), "`]: ",
                "one network round trip per call."
            )]
            #[derive(Debug, Clone)]
            pub struct [<$I Stub>] {
                r: $crate::__rt::RemoteRef,
            }

            impl [<$I Stub>] {
                /// Wraps a remote reference.
                pub fn new(r: $crate::__rt::RemoteRef) -> Self {
                    Self { r }
                }

                /// The underlying remote reference.
                pub fn remote_ref(&self) -> &$crate::__rt::RemoteRef {
                    &self.r
                }

                $(
                    $(#[$mm])*
                    #[allow(clippy::too_many_arguments)]
                    pub fn $m(&self $(, $a: $crate::remote_interface!(@stub_arg_ty $at $($aty)*))*)
                        -> ::core::result::Result<
                            $crate::remote_interface!(@stub_ret_ty $($mret)*),
                            $crate::__rt::RemoteError,
                        >
                    {
                        let __args: ::std::vec::Vec<$crate::__rt::Value> = ::std::vec![
                            $( $crate::remote_interface!(@stub_arg_val ($at $($aty)*) $a) ),*
                        ];
                        let __v = self.r.invoke(stringify!($m), __args)?;
                        $crate::remote_interface!(@stub_ret_conv ($($mret)*) __v (self.r.connection()))
                    }
                )*
            }

            impl $crate::StubCtor for [<$I Stub>] {
                fn from_remote_ref(r: $crate::__rt::RemoteRef) -> Self {
                    Self::new(r)
                }
            }

            // -------------------------- batch stub --------------------------
            #[doc = concat!(
                "Batch interface for [`", stringify!($I), "`] (the paper's `B",
                stringify!($I), "`): methods record into a batch and return ",
                "futures, batch stubs or cursors."
            )]
            #[derive(Debug, Clone)]
            pub struct [<B $I>] {
                stub: $crate::BatchStub,
            }

            impl [<B $I>] {
                /// Wraps `reference` as a root of `batch` — the analogue of
                /// `BRMI.create(iface, remoteObj)`.
                pub fn new(batch: &$crate::Batch, reference: &$crate::__rt::RemoteRef) -> Self {
                    Self { stub: batch.wrap(reference) }
                }

                /// The underlying untyped batch stub.
                pub fn as_stub(&self) -> &$crate::BatchStub {
                    &self.stub
                }

                /// The batch this stub records into.
                pub fn batch(&self) -> &$crate::Batch {
                    self.stub.batch()
                }

                /// Executes the batch (see [`Batch::flush`]).
                ///
                /// # Errors
                ///
                /// Communication and recording errors.
                ///
                /// [`Batch::flush`]: crate::Batch::flush
                pub fn flush(&self) -> ::core::result::Result<(), $crate::__rt::RemoteError> {
                    self.stub.batch().flush()
                }

                /// Executes the batch and starts a chained one (see
                /// [`Batch::flush_and_continue`]).
                ///
                /// # Errors
                ///
                /// Communication and recording errors.
                ///
                /// [`Batch::flush_and_continue`]: crate::Batch::flush_and_continue
                pub fn flush_and_continue(
                    &self,
                ) -> ::core::result::Result<(), $crate::__rt::RemoteError> {
                    self.stub.batch().flush_and_continue()
                }

                /// Checks that the call that produced this stub succeeded
                /// (the paper's `ok()`, Section 3.3).
                ///
                /// # Errors
                ///
                /// Re-throws the creating call's exception.
                pub fn ok(&self) -> ::core::result::Result<(), $crate::__rt::RemoteError> {
                    self.stub.ok()
                }

                $(
                    $(#[$mm])*
                    #[allow(clippy::too_many_arguments)]
                    pub fn $m(&self $(, $a: $crate::remote_interface!(@b_arg_ty $at $($aty)*))*)
                        -> $crate::remote_interface!(@b_ret_ty $($mret)*)
                    {
                        let __args: ::std::vec::Vec<$crate::RecordArg> = ::std::vec![
                            $( $crate::remote_interface!(@b_arg_val ($at $($aty)*) $a) ),*
                        ];
                        $crate::remote_interface!(@b_call ($($mret)*) (self.stub) (stringify!($m)) __args)
                    }
                )*
            }

            impl $crate::BatchCtor for [<B $I>] {
                fn from_stub(stub: $crate::BatchStub) -> Self {
                    Self { stub }
                }
            }

            impl $crate::BatchParam<dyn $I> for [<B $I>] {
                fn record_arg(&self) -> $crate::RecordArg {
                    $crate::RecordArg::Stub(self.stub.clone())
                }
            }

            // ---------------------------- cursor ----------------------------
            #[doc = concat!(
                "Cursor interface for [`", stringify!($I), "`] arrays (the ",
                "paper's `C", stringify!($I), "`, Section 3.4): before ",
                "`flush` it stands for every element; afterwards it iterates."
            )]
            #[derive(Debug, Clone)]
            pub struct [<C $I>] {
                cursor: $crate::CursorHandle,
            }

            impl [<C $I>] {
                /// The underlying untyped cursor.
                pub fn as_cursor(&self) -> &$crate::CursorHandle {
                    &self.cursor
                }

                /// Advances to the next element, updating this cursor's
                /// futures. Returns false when exhausted.
                ///
                /// (The paper calls this `next()`; it is `advance()` here so
                /// it can never collide with an interface method named
                /// `next`, as in the linked-list benchmark.)
                pub fn advance(&self) -> bool {
                    self.cursor.next()
                }

                /// Number of array elements; `None` before `flush`.
                pub fn element_count(&self) -> ::core::option::Option<u32> {
                    self.cursor.len()
                }

                /// Checks that the cursor-creating call succeeded.
                ///
                /// # Errors
                ///
                /// Re-throws the creating call's exception.
                pub fn ok(&self) -> ::core::result::Result<(), $crate::__rt::RemoteError> {
                    self.cursor.ok()
                }

                $(
                    $(#[$mm])*
                    #[allow(clippy::too_many_arguments)]
                    pub fn $m(&self $(, $a: $crate::remote_interface!(@b_arg_ty $at $($aty)*))*)
                        -> $crate::remote_interface!(@b_ret_ty $($mret)*)
                    {
                        let __args: ::std::vec::Vec<$crate::RecordArg> = ::std::vec![
                            $( $crate::remote_interface!(@b_arg_val ($at $($aty)*) $a) ),*
                        ];
                        $crate::remote_interface!(@b_call ($($mret)*) (self.cursor) (stringify!($m)) __args)
                    }
                )*
            }

            impl $crate::CursorCtor for [<C $I>] {
                fn from_cursor(cursor: $crate::CursorHandle) -> Self {
                    Self { cursor }
                }
            }

            impl $crate::BatchParam<dyn $I> for [<C $I>] {
                fn record_arg(&self) -> $crate::RecordArg {
                    $crate::RecordArg::Cursor(self.cursor.clone())
                }
            }

            // -------------------------- companions --------------------------
            impl $crate::Companions for dyn $I {
                type Batch = [<B $I>];
                type Cursor = [<C $I>];
                type Stub = [<$I Stub>];

                fn interface_meta() -> &'static $crate::__rt::InterfaceMeta {
                    [<$I Skeleton>]::INTERFACE_META
                }

                fn skeleton_of(
                    inner: $crate::__rt::Arc<Self>,
                ) -> $crate::__rt::Arc<dyn $crate::__rt::RemoteObject> {
                    [<$I Skeleton>]::remote_arc(inner)
                }

                fn loopback_proxy(
                    id: $crate::__rt::ObjectId,
                    loopback: $crate::__rt::Arc<dyn $crate::__rt::Loopback>,
                ) -> $crate::__rt::Arc<Self> {
                    $crate::__rt::Arc::new([<$I Loopback>]::new(id, loopback))
                }

                fn extract_arg(
                    arg: $crate::__rt::InArg,
                    ctx: &$crate::__rt::CallCtx,
                ) -> ::core::result::Result<$crate::__rt::Arc<Self>, $crate::__rt::RemoteError>
                {
                    match arg {
                        $crate::__rt::InArg::Remote(obj) => {
                            match obj.as_any().downcast_ref::<[<$I Skeleton>]>() {
                                ::core::option::Option::Some(skeleton) => {
                                    ::core::result::Result::Ok(skeleton.inner())
                                }
                                ::core::option::Option::None => ::core::result::Result::Err(
                                    $crate::__rt::wrong_remote_type(
                                        stringify!($I),
                                        obj.interface_name(),
                                    ),
                                ),
                            }
                        }
                        $crate::__rt::InArg::Value($crate::__rt::Value::RemoteRef(id)) => {
                            ::core::result::Result::Ok($crate::__rt::Arc::new(
                                [<$I Loopback>]::new(id, $crate::__rt::Arc::clone(&ctx.loopback)),
                            ))
                        }
                        $crate::__rt::InArg::Value(other) => ::core::result::Result::Err(
                            $crate::__rt::wrong_remote_type(stringify!($I), other.type_name()),
                        ),
                    }
                }
            }
        }
    };

    // ---------------------------------------------------------------
    // Helper arms (types) — no identifier concatenation needed: the
    // generated types are reached through `Companions` on `dyn I`.
    // ---------------------------------------------------------------
    (@sv_arg_ty v $T:ty) => { $T };
    (@sv_arg_ty r $R:ident) => { $crate::__rt::Arc<dyn $R> };

    (@sv_ret_ty value $T:ty) => { $T };
    (@sv_ret_ty void) => { () };
    (@sv_ret_ty remote $R:ident) => { $crate::__rt::Arc<dyn $R> };
    (@sv_ret_ty array $R:ident) => { ::std::vec::Vec<$crate::__rt::Arc<dyn $R>> };

    (@stub_arg_ty v $T:ty) => { $T };
    (@stub_arg_ty r $R:ident) => { &<dyn $R as $crate::Companions>::Stub };

    (@stub_ret_ty value $T:ty) => { $T };
    (@stub_ret_ty void) => { () };
    (@stub_ret_ty remote $R:ident) => { <dyn $R as $crate::Companions>::Stub };
    (@stub_ret_ty array $R:ident) => { ::std::vec::Vec<<dyn $R as $crate::Companions>::Stub> };

    (@b_arg_ty v $T:ty) => { $T };
    (@b_arg_ty r $R:ident) => { &dyn $crate::BatchParam<dyn $R> };

    (@b_ret_ty value $T:ty) => { $crate::BatchFuture<$T> };
    (@b_ret_ty void) => { $crate::BatchFuture<()> };
    (@b_ret_ty remote $R:ident) => { <dyn $R as $crate::Companions>::Batch };
    (@b_ret_ty array $R:ident) => { <dyn $R as $crate::Companions>::Cursor };

    // ---------------------------------------------------------------
    // Helper arms (expressions)
    // ---------------------------------------------------------------
    (@count) => { 0usize };
    (@count ($f:ident) $( ($r:ident) )*) => { 1usize + $crate::remote_interface!(@count $( ($r) )*) };

    (@returns_remote value $T:ty) => { false };
    (@returns_remote void) => { false };
    (@returns_remote remote $R:ident) => { true };
    (@returns_remote array $R:ident) => { true };

    (@extract_arg (v $T:ty) $iter:ident $ctx:ident) => {
        $crate::__rt::value_arg::<$T>($iter.next().expect("arity checked"))?
    };
    (@extract_arg (r $R:ident) $iter:ident $ctx:ident) => {
        <dyn $R as $crate::Companions>::extract_arg(
            $iter.next().expect("arity checked"),
            $ctx,
        )?
    };

    (@wrap_ret (value $T:ty) $e:ident) => {{
        let __v: $T = $e?;
        ::core::result::Result::Ok($crate::__rt::OutValue::Data(
            $crate::__rt::ToValue::into_value(__v),
        ))
    }};
    (@wrap_ret (void) $e:ident) => {{
        $e?;
        ::core::result::Result::Ok($crate::__rt::OutValue::Data($crate::__rt::Value::Null))
    }};
    (@wrap_ret (remote $R:ident) $e:ident) => {{
        let __v = $e?;
        ::core::result::Result::Ok($crate::__rt::OutValue::Remote(
            <dyn $R as $crate::Companions>::skeleton_of(__v),
        ))
    }};
    (@wrap_ret (array $R:ident) $e:ident) => {{
        let __v = $e?;
        ::core::result::Result::Ok($crate::__rt::OutValue::RemoteList(
            __v.into_iter()
                .map(<dyn $R as $crate::Companions>::skeleton_of)
                .collect(),
        ))
    }};

    (@loopback_arg_val (v $T:ty) $a:ident) => {
        $crate::__rt::ToValue::into_value($a)
    };
    (@loopback_arg_val (r $R:ident) $a:ident) => {
        $crate::__rt::loopback_arg_id($a.__remote_id())?
    };

    (@loopback_ret (value $T:ty) $v:ident ($lb:expr)) => {
        <$T as $crate::__rt::FromValue>::from_value($v)
    };
    (@loopback_ret (void) $v:ident ($lb:expr)) => {
        <() as $crate::__rt::FromValue>::from_value($v)
    };
    (@loopback_ret (remote $R:ident) $v:ident ($lb:expr)) => {{
        let __id = $crate::__rt::expect_remote_ref($v)?;
        ::core::result::Result::Ok(<dyn $R as $crate::Companions>::loopback_proxy(
            __id,
            $crate::__rt::Arc::clone($lb),
        ))
    }};
    (@loopback_ret (array $R:ident) $v:ident ($lb:expr)) => {{
        let __ids = $crate::__rt::expect_ref_list($v)?;
        ::core::result::Result::Ok(
            __ids
                .into_iter()
                .map(|__id| {
                    <dyn $R as $crate::Companions>::loopback_proxy(
                        __id,
                        $crate::__rt::Arc::clone($lb),
                    )
                })
                .collect(),
        )
    }};

    (@stub_arg_val (v $T:ty) $a:ident) => {
        $crate::__rt::ToValue::into_value($a)
    };
    (@stub_arg_val (r $R:ident) $a:ident) => {
        $crate::__rt::Value::RemoteRef($a.remote_ref().id())
    };

    (@stub_ret_conv (value $T:ty) $v:ident ($conn:expr)) => {
        <$T as $crate::__rt::FromValue>::from_value($v)
    };
    (@stub_ret_conv (void) $v:ident ($conn:expr)) => {
        <() as $crate::__rt::FromValue>::from_value($v)
    };
    (@stub_ret_conv (remote $R:ident) $v:ident ($conn:expr)) => {{
        let __id = $crate::__rt::expect_remote_ref($v)?;
        ::core::result::Result::Ok($crate::StubCtor::from_remote_ref(
            $crate::__rt::RemoteRef::from_parts($conn.clone(), __id),
        ))
    }};
    (@stub_ret_conv (array $R:ident) $v:ident ($conn:expr)) => {{
        let __ids = $crate::__rt::expect_ref_list($v)?;
        ::core::result::Result::Ok(
            __ids
                .into_iter()
                .map(|__id| {
                    <<dyn $R as $crate::Companions>::Stub as $crate::StubCtor>::from_remote_ref(
                        $crate::__rt::RemoteRef::from_parts($conn.clone(), __id),
                    )
                })
                .collect(),
        )
    }};

    (@b_arg_val (v $T:ty) $a:ident) => {
        $crate::RecordArg::Value($crate::__rt::ToValue::into_value($a))
    };
    (@b_arg_val (r $R:ident) $a:ident) => {
        $a.record_arg()
    };

    (@b_call (value $T:ty) ($recv:expr) ($name:expr) $args:ident) => {
        $recv.call_future::<$T>($name, $args)
    };
    (@b_call (void) ($recv:expr) ($name:expr) $args:ident) => {
        $recv.call_future::<()>($name, $args)
    };
    (@b_call (remote $R:ident) ($recv:expr) ($name:expr) $args:ident) => {
        $crate::BatchCtor::from_stub($recv.call_remote($name, $args))
    };
    (@b_call (array $R:ident) ($recv:expr) ($name:expr) $args:ident) => {
        $crate::CursorCtor::from_cursor($recv.call_cursor($name, $args))
    };
}
