//! The client half of explicit batching: invocation monitoring, `flush`
//! and result interpretation (paper Sections 4.1 and 4.3).
//!
//! A [`Batch`] owns the recording for one batch *chain*. Calls made through
//! [`BatchStub`]s and [`CursorHandle`]s are appended as
//! [`InvocationData`] descriptors; [`Batch::flush`] ships them in one round
//! trip, and [`Batch::flush_and_continue`] additionally keeps the
//! server-side object array alive so a later batch can reference earlier
//! results (Section 3.5).
//!
//! # Flush delivery semantics
//!
//! A flush travels with whatever delivery mode its [`Connection`] provides.
//! Over a plain connection the batch is sent as a `BatchCall` frame with
//! **at-most-once** delivery: if the transport fails mid-round-trip nothing
//! is re-sent (the origin may or may not have executed the segment) and the
//! failure surfaces through [`PendingFlush::join`] or the per-call futures.
//! Over a keyed connection ([`Connection::new_keyed`]) the same flush is
//! stamped with an idempotency key and sent as a `KeyedBatchCall`, which
//! retry-aware transports may transparently re-send after a reconnect — the
//! origin's reply cache guarantees the segment still executes **exactly
//! once**, with duplicates answered from the cached reply. `Batch` itself is
//! oblivious to the mode; keying and retries compose underneath
//! [`Connection::invoke_batch`].
//!
//! [`BatchStub`]: crate::stub::BatchStub
//! [`CursorHandle`]: crate::stub::CursorHandle
//! [`Connection::new_keyed`]: brmi_rmi::Connection::new_keyed

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::invocation::{
    Arg, BatchRequest, BatchResponse, CallSeq, InvocationData, PolicySpec, SessionId, SlotOutcome,
    Target,
};
use brmi_wire::{RemoteError, RemoteErrorKind, Value};
use parking_lot::Mutex;

use crate::future::{FlushGate, FutureSlot};
use crate::stats::BatchStats;
use crate::stub::{BatchStub, CursorHandle, RecordArg, StubKind};

/// Phase of a batch chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Calls are being recorded (possibly after chained flushes).
    Recording,
    /// A plain `flush` completed (or failed); no more recording.
    Finished,
}

/// Client-side state of one cursor.
#[derive(Debug)]
pub(crate) struct CursorState {
    /// Member call seqs recorded into the cursor's sub-batch, in order.
    members: Vec<u32>,
    /// True once a non-member call ended the sub-batch (contiguity rule,
    /// paper Section 4.1).
    closed: bool,
    /// Set when the creating batch was flushed.
    flushed: Option<FlushedCursor>,
}

#[derive(Debug)]
struct FlushedCursor {
    len: u32,
    members: Vec<u32>,
    rows: Vec<Vec<SlotOutcome>>,
    /// Current iteration position; `None` before the first `next()`.
    pos: Option<u32>,
}

struct BatchInner {
    conn: Connection,
    policy: PolicySpec,
    phase: Phase,
    /// Set on a recording error (foreign stub, cursor misuse). The next
    /// flush reports it instead of contacting the server.
    poisoned: Option<RemoteError>,
    next_seq: u32,
    pending: Vec<InvocationData>,
    slots: HashMap<u32, Arc<FutureSlot>>,
    cursors: HashMap<u32, CursorState>,
    session: Option<SessionId>,
    /// The most recent pipelined flush still (possibly) in flight. A later
    /// flush — pipelined or not — joins it first, so segments reach the
    /// server in recording order.
    inflight: Option<Arc<FlushGate>>,
    stats: BatchStats,
}

impl BatchInner {
    fn poison(&mut self, err: RemoteError) {
        if self.poisoned.is_none() && self.phase == Phase::Recording {
            self.poisoned = Some(err);
        }
    }
}

impl Drop for BatchInner {
    fn drop(&mut self) {
        // Best-effort release of a live chained-batch session.
        if let Some(session) = self.session.take() {
            let _ = self.conn.release_session(session);
        }
    }
}

/// A batch of remote calls under construction (or being chained).
///
/// Cheap to clone; clones share state. The paper's one-batch-at-a-time rule
/// (Section 4.5) is enforced structurally: all recording goes through one
/// internal lock, and concurrent batching requires separate `Batch` values,
/// just as concurrent BRMI clients need separate stubs.
#[derive(Clone)]
pub struct Batch {
    inner: Arc<Mutex<BatchInner>>,
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Batch")
            .field("phase", &inner.phase)
            .field("pending_calls", &inner.pending.len())
            .field("session", &inner.session)
            .finish_non_exhaustive()
    }
}

/// Handle to a pipelined flush started by [`Batch::flush_async`] or
/// [`Batch::flush_and_continue_async`].
///
/// The round trip runs on a worker thread. Joining is optional: touching
/// any future of the shipped segment claims the reply too, and dropping
/// the handle never cancels the flush.
pub struct PendingFlush {
    gate: Arc<FlushGate>,
}

impl PendingFlush {
    /// Waits for the flush to complete and returns its outcome — exactly
    /// what the equivalent synchronous [`Batch::flush`] call would have
    /// returned.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures of the shipped segment, or the
    /// recording error that poisoned it.
    pub fn join(&self) -> Result<(), RemoteError> {
        self.gate.wait()
    }

    /// True once the flush has completed (successfully or not), without
    /// blocking.
    pub fn is_done(&self) -> bool {
        self.gate.try_result().is_some()
    }
}

impl std::fmt::Debug for PendingFlush {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingFlush")
            .field("done", &self.is_done())
            .finish()
    }
}

/// Result of recording one call.
pub(crate) struct Recorded {
    pub(crate) seq: u32,
    pub(crate) slot: Arc<FutureSlot>,
}

/// The receiver of a recorded call.
pub(crate) enum Receiver<'a> {
    Stub(&'a BatchStub),
    Cursor(&'a CursorHandle),
}

impl Batch {
    /// Creates a batch over `conn` with the given exception policy.
    ///
    /// This is the analogue of `BRMI.create(iface, remoteObj, policy)`; the
    /// typed root stub is obtained with [`Batch::wrap`] (or the generated
    /// `BFoo::new`).
    pub fn new(conn: Connection, policy: impl Into<PolicySpec>) -> Self {
        Batch {
            inner: Arc::new(Mutex::new(BatchInner {
                conn,
                policy: policy.into(),
                phase: Phase::Recording,
                poisoned: None,
                next_seq: 0,
                pending: Vec::new(),
                slots: HashMap::new(),
                cursors: HashMap::new(),
                session: None,
                inflight: None,
                stats: BatchStats::default(),
            })),
        }
    }

    /// Wraps a remote reference as an untyped root batch stub.
    pub fn wrap(&self, reference: &RemoteRef) -> BatchStub {
        BatchStub::new_root(self.clone(), reference.id())
    }

    /// Executes the batch: one round trip, then all futures hold values.
    /// The batch is finished afterwards; recording further calls fails.
    ///
    /// # Errors
    ///
    /// Transport and protocol failures (the paper notes all communication
    /// errors surface here, Section 3.3), or a recording error that
    /// poisoned the batch. Per-call application exceptions are *not*
    /// reported here — they re-throw from `Future::get`/`ok()`.
    pub fn flush(&self) -> Result<(), RemoteError> {
        self.do_flush(false)
    }

    /// Executes the batch but keeps the server context alive so the chain
    /// can continue (paper Section 3.5).
    ///
    /// # Errors
    ///
    /// As for [`Batch::flush`].
    pub fn flush_and_continue(&self) -> Result<(), RemoteError> {
        self.do_flush(true)
    }

    /// Ships the batch without waiting for the reply — the *pipelined*
    /// flush. The round trip runs on a worker thread; the returned handle
    /// joins it explicitly, and any of the batch's futures claims the
    /// reply implicitly on first touch (`get`/`ok`). The batch is finished
    /// for recording immediately, exactly like [`Batch::flush`].
    ///
    /// Transport and recording errors surface at
    /// [`PendingFlush::join`] (and re-throw from the covered futures), not
    /// here — communication failures still surface "at flush", just at the
    /// point the flush is observed.
    #[must_use = "the flush outcome surfaces at join() or on the futures"]
    pub fn flush_async(&self) -> PendingFlush {
        self.do_flush_async(false)
    }

    /// Pipelined variant of [`Batch::flush_and_continue`]: ships the
    /// current segment without waiting and keeps the chain open, so the
    /// client can record (and even flush) the next segment while this one
    /// is on the wire. A subsequent flush — pipelined or not — joins every
    /// in-flight predecessor before sending, so segments reach the server
    /// in recording order.
    #[must_use = "the flush outcome surfaces at join() or on the futures"]
    pub fn flush_and_continue_async(&self) -> PendingFlush {
        self.do_flush_async(true)
    }

    /// Counters for this batch chain.
    pub fn stats(&self) -> BatchStats {
        self.inner.lock().stats
    }

    /// True once a plain `flush` has completed (or failed).
    pub fn is_finished(&self) -> bool {
        self.inner.lock().phase == Phase::Finished
    }

    /// The live chained-batch session id, if any (introspection for tests).
    pub fn session(&self) -> Option<SessionId> {
        self.inner.lock().session
    }

    pub(crate) fn ptr_eq(&self, other: &Batch) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Records one call. Never panics: validation failures pre-fail the
    /// returned slot and poison the batch so `flush` reports them.
    pub(crate) fn record(
        &self,
        on: Receiver<'_>,
        method: &str,
        args: Vec<RecordArg>,
        opens_cursor: bool,
    ) -> Recorded {
        let slot = FutureSlot::new();
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.stats.calls_recorded += 1;

        // Every recorded call registers its slot, including ones that
        // fail during recording — `ok()` checks and failure scans
        // (`first_failure_from`) must see those too, and the stats
        // counter stays in lockstep with the sequence numbers.
        inner.slots.insert(seq, Arc::clone(&slot));

        // Helper to fail this call (and usually the whole batch).
        macro_rules! fail {
            ($err:expr) => {{
                let err: RemoteError = $err;
                slot.set_failed(err.clone());
                inner.poison(err);
                return Recorded { seq, slot };
            }};
        }

        if let Some(poison) = inner.poisoned.clone() {
            slot.set_failed(poison);
            return Recorded { seq, slot };
        }
        if inner.phase == Phase::Finished {
            // Not a poison: the batch already ran to completion.
            slot.set_failed(RemoteError::new(
                RemoteErrorKind::Protocol,
                "batch already executed; create a new batch",
            ));
            return Recorded { seq, slot };
        }

        // Resolve the receiver into a wire target plus the cursor context
        // it implies.
        let (target, mut ctx) = match on {
            Receiver::Stub(stub) => {
                if !stub.batch().ptr_eq(self) {
                    fail!(foreign_stub());
                }
                match stub.kind() {
                    StubKind::Remote(id) => (Target::Remote(id), None),
                    StubKind::Call {
                        seq: origin,
                        cursor_of: None,
                    } => (Target::Result(CallSeq(origin)), None),
                    StubKind::Call {
                        seq: origin,
                        cursor_of: Some(cursor),
                    } => match cursor_position(&inner, cursor) {
                        CursorPhase::Recording => (Target::Result(CallSeq(origin)), Some(cursor)),
                        CursorPhase::Iterating(pos) => {
                            (Target::CursorElement(CallSeq(origin), pos), None)
                        }
                        CursorPhase::Unpositioned => fail!(unpositioned_cursor()),
                    },
                }
            }
            Receiver::Cursor(handle) => {
                if !handle.batch().ptr_eq(self) {
                    fail!(foreign_stub());
                }
                let cursor = handle.seq();
                match cursor_position(&inner, cursor) {
                    CursorPhase::Recording => (Target::Result(CallSeq(cursor)), Some(cursor)),
                    CursorPhase::Iterating(pos) => {
                        (Target::CursorElement(CallSeq(cursor), pos), None)
                    }
                    CursorPhase::Unpositioned => fail!(unpositioned_cursor()),
                }
            }
        };

        // Convert arguments, merging any cursor context they imply.
        let mut wire_args = Vec::with_capacity(args.len());
        for arg in args {
            let converted = match arg {
                RecordArg::Value(value) => Arg::Value(value),
                RecordArg::Stub(stub) => {
                    if !stub.batch().ptr_eq(self) {
                        fail!(foreign_stub());
                    }
                    match stub.kind() {
                        StubKind::Remote(id) => Arg::Value(Value::RemoteRef(id)),
                        StubKind::Call {
                            seq: origin,
                            cursor_of: None,
                        } => Arg::Result(CallSeq(origin)),
                        StubKind::Call {
                            seq: origin,
                            cursor_of: Some(cursor),
                        } => match cursor_position(&inner, cursor) {
                            CursorPhase::Recording => match merge_ctx(&mut ctx, cursor) {
                                Ok(()) => Arg::Result(CallSeq(origin)),
                                Err(err) => fail!(err),
                            },
                            CursorPhase::Iterating(pos) => Arg::CursorElement(CallSeq(origin), pos),
                            CursorPhase::Unpositioned => fail!(unpositioned_cursor()),
                        },
                    }
                }
                RecordArg::Cursor(handle) => {
                    if !handle.batch().ptr_eq(self) {
                        fail!(foreign_stub());
                    }
                    let cursor = handle.seq();
                    match cursor_position(&inner, cursor) {
                        CursorPhase::Recording => match merge_ctx(&mut ctx, cursor) {
                            Ok(()) => Arg::Result(CallSeq(cursor)),
                            Err(err) => fail!(err),
                        },
                        CursorPhase::Iterating(pos) => Arg::CursorElement(CallSeq(cursor), pos),
                        CursorPhase::Unpositioned => fail!(unpositioned_cursor()),
                    }
                }
            };
            wire_args.push(converted);
        }

        if opens_cursor && ctx.is_some() {
            fail!(RemoteError::new(
                RemoteErrorKind::Protocol,
                "nested cursors are not supported",
            ));
        }

        // Contiguity (paper Section 4.1): a cursor's sub-batch must not
        // resume after unrelated calls were recorded.
        if let Some(cursor) = ctx {
            match inner.cursors.get(&cursor) {
                Some(state) if state.closed => fail!(RemoteError::new(
                    RemoteErrorKind::Protocol,
                    "cursor operations must be contiguous within the batch",
                )),
                Some(_) => {}
                None => fail!(RemoteError::new(
                    RemoteErrorKind::Protocol,
                    "cursor does not belong to this batch segment",
                )),
            }
        }
        for (other, state) in inner.cursors.iter_mut() {
            if Some(*other) != ctx && state.flushed.is_none() && !state.members.is_empty() {
                state.closed = true;
            }
        }
        if let Some(cursor) = ctx {
            if let Some(state) = inner.cursors.get_mut(&cursor) {
                state.members.push(seq);
            }
        }

        if opens_cursor {
            inner.cursors.insert(
                seq,
                CursorState {
                    members: Vec::new(),
                    closed: false,
                    flushed: None,
                },
            );
            inner.stats.cursors_created += 1;
        }

        inner.pending.push(InvocationData {
            seq: CallSeq(seq),
            target,
            method: method.to_owned(),
            args: wire_args,
            cursor: ctx.map(CallSeq),
            opens_cursor,
        });
        Recorded { seq, slot }
    }

    /// Looks up the slot behind a call (for `ok()` checks).
    pub(crate) fn slot_of(&self, seq: u32) -> Option<Arc<FutureSlot>> {
        self.inner.lock().slots.get(&seq).cloned()
    }

    /// The earliest failure among calls recorded at or after position
    /// `start` (in recording order), if any.
    ///
    /// Support for runtimes layered over explicit batching — an implicit
    /// batcher uses this after each flush to detect that the segment it
    /// just shipped aborted, so it can stop speculating (see the
    /// `brmi-implicit` crate). Calls not yet flushed are `Pending`, not
    /// failed, and are never reported here.
    pub fn first_failure_from(&self, start: u32) -> Option<RemoteError> {
        let inner = self.inner.lock();
        let mut found: Option<(u32, RemoteError)> = None;
        for (&seq, slot) in &inner.slots {
            if seq < start {
                continue;
            }
            if let Err(err) = slot.check_failed() {
                match &found {
                    Some((best, _)) if *best <= seq => {}
                    _ => found = Some((seq, err)),
                }
            }
        }
        found.map(|(_, err)| err)
    }

    /// Discards every recorded-but-unflushed call, failing its futures
    /// (and dependent stubs) with `reason`. The batch stays usable: the
    /// session, previously flushed results and the recording phase are
    /// untouched.
    ///
    /// Used by layered runtimes to drop calls that were recorded
    /// speculatively after a failure the program had not yet observed
    /// (RMI would have unwound before issuing them). Returns the number
    /// of discarded calls.
    pub fn discard_pending(&self, reason: &RemoteError) -> usize {
        let mut inner = self.inner.lock();
        let pending = std::mem::take(&mut inner.pending);
        let discarded = pending.len();
        for call in &pending {
            if let Some(slot) = inner.slots.get(&call.seq.0) {
                slot.set_failed(reason.clone());
            }
        }
        // A cursor opened by a discarded call never reaches the server;
        // mark its member bookkeeping closed so later (mis)use of the
        // cursor is reported instead of silently re-recorded.
        for call in &pending {
            if call.opens_cursor {
                if let Some(state) = inner.cursors.get_mut(&call.seq.0) {
                    state.closed = true;
                }
            }
        }
        discarded
    }

    /// Advances a flushed cursor to its next element, repopulating member
    /// futures. Returns false when exhausted or not flushed.
    pub(crate) fn cursor_next(&self, cursor: u32) -> bool {
        let mut inner = self.inner.lock();
        let assignments: Vec<(u32, SlotOutcome)> = {
            let Some(state) = inner.cursors.get_mut(&cursor) else {
                return false;
            };
            let Some(flushed) = state.flushed.as_mut() else {
                return false;
            };
            let next = flushed.pos.map_or(0, |p| p.saturating_add(1));
            if next >= flushed.len {
                flushed.pos = Some(flushed.len);
                return false;
            }
            flushed.pos = Some(next);
            let row = &flushed.rows[next as usize];
            flushed
                .members
                .iter()
                .copied()
                .zip(row.iter().cloned())
                .collect()
        };
        for (member, outcome) in assignments {
            if let Some(slot) = inner.slots.get(&member) {
                apply_outcome(slot, outcome);
            }
        }
        true
    }

    /// Number of elements in a flushed cursor.
    pub(crate) fn cursor_len(&self, cursor: u32) -> Option<u32> {
        self.inner
            .lock()
            .cursors
            .get(&cursor)
            .and_then(|state| state.flushed.as_ref())
            .map(|flushed| flushed.len)
    }

    fn do_flush(&self, keep: bool) -> Result<(), RemoteError> {
        self.join_inflight();
        let (request, seqs, conn) = match self.prepare_flush(keep)? {
            Some(prepared) => prepared,
            None => return Ok(()),
        };
        let result = conn.invoke_batch(request);
        self.apply_flush(&seqs, keep, result)
    }

    /// Ships one segment on a worker thread. The returned handle (and the
    /// flush gates attached to the segment's slots) complete after the
    /// response has been applied.
    fn do_flush_async(&self, keep: bool) -> PendingFlush {
        let gate = FlushGate::new();
        let (calls, prev) = {
            let mut inner = self.inner.lock();
            if let Some(poison) = inner.poisoned.take() {
                Batch::fail_pending_locked(&mut inner, &poison);
                inner.phase = Phase::Finished;
                if let Some(session) = inner.session.take() {
                    let _ = inner.conn.release_session(session);
                }
                gate.complete(Err(poison));
                return PendingFlush { gate };
            }
            if inner.phase == Phase::Finished {
                gate.complete(Err(already_executed()));
                return PendingFlush { gate };
            }
            let calls = std::mem::take(&mut inner.pending);
            // Every covered future can claim this flush on first touch.
            for call in &calls {
                if let Some(slot) = inner.slots.get(&call.seq.0) {
                    slot.attach_flush(Arc::clone(&gate));
                }
            }
            let prev = inner.inflight.replace(Arc::clone(&gate));
            if !keep {
                // Recording is over immediately, exactly like `flush`; the
                // reply just hasn't been claimed yet.
                inner.phase = Phase::Finished;
            }
            (calls, prev)
        };

        // The job is shared with the worker closure (instead of moved into
        // it) so a failed spawn can still run the very same flush inline —
        // the segment's calls must not be lost with the dropped closure.
        let job = Arc::new(Mutex::new(Some((calls, prev))));
        let batch = self.clone();
        let worker_gate = Arc::clone(&gate);
        let worker_job = Arc::clone(&job);
        // One detached worker per in-flight segment; the gate (not the
        // join handle) is the completion primitive.
        let spawned = std::thread::Builder::new()
            .name("brmi-flush".into())
            .spawn(move || {
                if let Some((calls, prev)) = worker_job.lock().take() {
                    batch.run_async_flush(calls, prev, keep, worker_gate);
                }
            });
        if spawned.is_err() {
            // Could not spawn: degrade to a synchronous flush on this
            // thread so the handle still resolves.
            if let Some((calls, prev)) = job.lock().take() {
                self.run_async_flush(calls, prev, keep, Arc::clone(&gate));
            }
        }
        PendingFlush { gate }
    }

    /// Worker half of a pipelined flush.
    fn run_async_flush(
        &self,
        calls: Vec<InvocationData>,
        prev: Option<Arc<FlushGate>>,
        keep: bool,
        gate: Arc<FlushGate>,
    ) {
        // Preserve segment order: the previous in-flight flush must be on
        // the server before this one is sent (it may also establish the
        // session id this segment continues).
        if let Some(prev) = prev {
            if prev.wait().is_err() {
                // The chain is broken; this segment fails the way a sync
                // flush after a failed flush would.
                let err = already_executed();
                let inner = self.inner.lock();
                for call in &calls {
                    if let Some(slot) = inner.slots.get(&call.seq.0) {
                        slot.set_failed(err.clone());
                    }
                }
                drop(inner);
                gate.complete(Err(err));
                return;
            }
        }
        let (request, seqs, conn) = {
            let mut inner = self.inner.lock();
            if calls.is_empty() && inner.session.is_none() {
                if !keep {
                    inner.phase = Phase::Finished;
                }
                drop(inner);
                gate.complete(Ok(()));
                return;
            }
            let seqs: Vec<u32> = calls.iter().map(|c| c.seq.0).collect();
            let request = BatchRequest {
                session: inner.session,
                calls,
                policy: inner.policy.clone(),
                keep_session: keep,
            };
            (request, seqs, inner.conn.clone())
        };
        let result = conn.invoke_batch(request);
        gate.complete(self.apply_flush(&seqs, keep, result));
    }

    /// Blocks until every in-flight pipelined flush has completed.
    fn join_inflight(&self) {
        loop {
            let gate = self.inner.lock().inflight.take();
            match gate {
                Some(gate) => {
                    let _ = gate.wait();
                }
                None => return,
            }
        }
    }

    /// Fails every recorded-but-unflushed call with `err` (lock held).
    fn fail_pending_locked(inner: &mut BatchInner, err: &RemoteError) {
        let seqs: Vec<u32> = inner.pending.iter().map(|c| c.seq.0).collect();
        for seq in seqs {
            if let Some(slot) = inner.slots.get(&seq) {
                slot.set_failed(err.clone());
            }
        }
        inner.pending.clear();
    }

    /// First half of a flush: validates the phase and takes the pending
    /// segment off the batch. Returns `None` when there is nothing to send.
    #[allow(clippy::type_complexity)]
    fn prepare_flush(
        &self,
        keep: bool,
    ) -> Result<Option<(BatchRequest, Vec<u32>, Connection)>, RemoteError> {
        let mut inner = self.inner.lock();
        if let Some(poison) = inner.poisoned.take() {
            Batch::fail_pending_locked(&mut inner, &poison);
            inner.phase = Phase::Finished;
            if let Some(session) = inner.session.take() {
                let _ = inner.conn.release_session(session);
            }
            return Err(poison);
        }
        if inner.phase == Phase::Finished {
            return Err(already_executed());
        }

        let calls = std::mem::take(&mut inner.pending);
        if calls.is_empty() && inner.session.is_none() {
            if !keep {
                inner.phase = Phase::Finished;
            }
            return Ok(None);
        }
        let seqs: Vec<u32> = calls.iter().map(|c| c.seq.0).collect();
        let request = BatchRequest {
            session: inner.session,
            calls,
            policy: inner.policy.clone(),
            keep_session: keep,
        };
        Ok(Some((request, seqs, inner.conn.clone())))
    }

    /// Second half of a flush: applies the server's response (or the
    /// transport failure) to the segment's slots and the chain state.
    fn apply_flush(
        &self,
        seqs: &[u32],
        keep: bool,
        result: Result<BatchResponse, RemoteError>,
    ) -> Result<(), RemoteError> {
        let mut inner = self.inner.lock();
        let response = match result {
            Ok(response) => response,
            Err(err) => {
                // All communication errors surface at flush (Section 3.3):
                // the futures of this segment fail with the same error.
                for seq in seqs {
                    if let Some(slot) = inner.slots.get(seq) {
                        slot.set_failed(err.clone());
                    }
                }
                inner.phase = Phase::Finished;
                inner.session = None;
                return Err(err);
            }
        };

        inner.stats.flushes += 1;
        if keep {
            inner.stats.chained_flushes += 1;
        }
        inner.stats.server_restarts += u64::from(response.restarts);

        let mut responded: HashSet<u32> = HashSet::with_capacity(response.slots.len());
        for (seq, outcome) in response.slots {
            responded.insert(seq.0);
            if matches!(outcome, SlotOutcome::InCursor) {
                continue; // populated by next()
            }
            if let Some(slot) = inner.slots.get(&seq.0) {
                apply_outcome(slot, outcome);
            }
        }
        for seq in seqs {
            if !responded.contains(seq) {
                if let Some(slot) = inner.slots.get(seq) {
                    slot.set_failed(RemoteError::new(
                        RemoteErrorKind::Protocol,
                        format!("server response missing result for call {seq}"),
                    ));
                }
            }
        }

        for cursor in response.cursors {
            if let Some(state) = inner.cursors.get_mut(&cursor.cursor_seq.0) {
                state.flushed = Some(FlushedCursor {
                    len: cursor.len,
                    members: cursor.members.iter().map(|m| m.0).collect(),
                    rows: cursor.rows,
                    pos: None,
                });
            }
        }
        // A cursor whose creating call failed has no results: its member
        // futures re-throw the creation error (dependency rule, §3.3).
        // `check_applied` (not the claiming `check`) — this runs inside
        // the flush being applied, whose own gate completes only after we
        // return; claiming here would wait on it and self-deadlock.
        let mut failed_members: Vec<(u32, RemoteError)> = Vec::new();
        for (cursor_seq, state) in &inner.cursors {
            if state.flushed.is_none() && !state.members.is_empty() {
                if let Some(slot) = inner.slots.get(cursor_seq) {
                    if let Err(err) = slot.check_applied() {
                        for member in &state.members {
                            failed_members.push((*member, err.clone()));
                        }
                    }
                }
            }
        }
        for (member, err) in failed_members {
            if let Some(slot) = inner.slots.get(&member) {
                slot.set_failed(err);
            }
        }

        inner.session = response.session;
        if !keep {
            inner.phase = Phase::Finished;
            if let Some(session) = inner.session.take() {
                // A conforming server never returns a session here; release
                // defensively if one does.
                let _ = inner.conn.release_session(session);
            }
        }
        Ok(())
    }
}

enum CursorPhase {
    /// The creating batch segment has not been flushed yet.
    Recording,
    /// Flushed and positioned on an element.
    Iterating(u32),
    /// Flushed but `next()` has not been called (or the cursor is
    /// exhausted).
    Unpositioned,
}

fn cursor_position(inner: &BatchInner, cursor: u32) -> CursorPhase {
    match inner.cursors.get(&cursor).and_then(|s| s.flushed.as_ref()) {
        None => CursorPhase::Recording,
        Some(flushed) => match flushed.pos {
            Some(pos) if pos < flushed.len => CursorPhase::Iterating(pos),
            _ => CursorPhase::Unpositioned,
        },
    }
}

fn merge_ctx(ctx: &mut Option<u32>, cursor: u32) -> Result<(), RemoteError> {
    match ctx {
        None => {
            *ctx = Some(cursor);
            Ok(())
        }
        Some(existing) if *existing == cursor => Ok(()),
        Some(_) => Err(RemoteError::new(
            RemoteErrorKind::Protocol,
            "one call cannot involve two different cursors",
        )),
    }
}

fn apply_outcome(slot: &FutureSlot, outcome: SlotOutcome) {
    match outcome {
        SlotOutcome::Ok(value) => slot.set_ready(value),
        SlotOutcome::Err(env) | SlotOutcome::Skipped(env) => {
            slot.set_failed(RemoteError::from(&env));
        }
        SlotOutcome::InCursor => {}
    }
}

fn already_executed() -> RemoteError {
    RemoteError::new(
        RemoteErrorKind::Protocol,
        "batch already executed; create a new batch",
    )
}

fn foreign_stub() -> RemoteError {
    RemoteError::new(
        RemoteErrorKind::Protocol,
        "stub was created within a different batch chain",
    )
}

fn unpositioned_cursor() -> RemoteError {
    RemoteError::new(
        RemoteErrorKind::Protocol,
        "cursor is not positioned on an element; call next() first",
    )
}
