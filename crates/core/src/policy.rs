//! Client-side exception policy builders (paper Section 3.3).
//!
//! Policies are *descriptions*, serialized into the batch request — never
//! mobile code. The three types mirror the paper's `AbortPolicy`,
//! `ContinuePolicy` and `CustomPolicy` final classes.

use brmi_wire::invocation::{ExceptionAction, PolicyRule, PolicySpec};

/// Aborts the batch on the first exception (the default policy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AbortPolicy;

impl From<AbortPolicy> for PolicySpec {
    fn from(_: AbortPolicy) -> Self {
        PolicySpec::Abort
    }
}

/// Continues executing the batch past exceptions (dependents of a failed
/// call are still skipped — their receiver never came to exist).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContinuePolicy;

impl From<ContinuePolicy> for PolicySpec {
    fn from(_: ContinuePolicy) -> Self {
        PolicySpec::Continue
    }
}

/// A rule-based policy: per-(exception, method, position) actions with a
/// default.
///
/// # Example
///
/// The paper's Bank case study (Section 5.1): continue past everything, but
/// break the batch when the account lookup itself fails.
///
/// ```
/// use brmi::policy::CustomPolicy;
/// use brmi_wire::invocation::ExceptionAction;
///
/// let mut policy = CustomPolicy::new();
/// policy.set_default_action(ExceptionAction::Continue);
/// policy.set_action(
///     "DuplicateAccountException",
///     "find_credit_account",
///     0,
///     ExceptionAction::Break,
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomPolicy {
    default: ExceptionAction,
    rules: Vec<PolicyRule>,
}

impl Default for CustomPolicy {
    fn default() -> Self {
        CustomPolicy::new()
    }
}

impl CustomPolicy {
    /// Creates a policy whose default action is `Break`.
    pub fn new() -> Self {
        CustomPolicy {
            default: ExceptionAction::Break,
            rules: Vec::new(),
        }
    }

    /// Sets the action applied when no rule matches.
    pub fn set_default_action(&mut self, action: ExceptionAction) -> &mut Self {
        self.default = action;
        self
    }

    /// Adds a fully-qualified rule: exception name + method name + call
    /// position, mirroring the paper's
    /// `setAction(exception, methodName, index, status)`.
    pub fn set_action(
        &mut self,
        exception: &str,
        method: &str,
        index: u32,
        action: ExceptionAction,
    ) -> &mut Self {
        self.rules.push(PolicyRule {
            exception: Some(exception.to_owned()),
            method: Some(method.to_owned()),
            index: Some(index),
            action,
        });
        self
    }

    /// Adds a rule matching an exception name anywhere in the batch.
    pub fn on_exception(&mut self, exception: &str, action: ExceptionAction) -> &mut Self {
        self.rules.push(PolicyRule {
            exception: Some(exception.to_owned()),
            method: None,
            index: None,
            action,
        });
        self
    }

    /// Adds a rule matching any exception thrown by `method`.
    pub fn on_method(&mut self, method: &str, action: ExceptionAction) -> &mut Self {
        self.rules.push(PolicyRule {
            exception: None,
            method: Some(method.to_owned()),
            index: None,
            action,
        });
        self
    }
}

impl From<CustomPolicy> for PolicySpec {
    fn from(policy: CustomPolicy) -> Self {
        PolicySpec::Custom {
            default: policy.default,
            rules: policy.rules,
        }
    }
}

impl From<&CustomPolicy> for PolicySpec {
    fn from(policy: &CustomPolicy) -> Self {
        PolicySpec::from(policy.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brmi_wire::RemoteError;

    #[test]
    fn abort_and_continue_map_to_specs() {
        assert_eq!(PolicySpec::from(AbortPolicy), PolicySpec::Abort);
        assert_eq!(PolicySpec::from(ContinuePolicy), PolicySpec::Continue);
    }

    #[test]
    fn custom_policy_builds_rules_in_order() {
        let mut policy = CustomPolicy::new();
        policy
            .set_default_action(ExceptionAction::Continue)
            .on_exception("A", ExceptionAction::Repeat)
            .on_method("m", ExceptionAction::Restart)
            .set_action("B", "n", 2, ExceptionAction::Break);
        let spec = PolicySpec::from(policy);
        let err_a = RemoteError::application("A", "x");
        assert_eq!(spec.action_for(&err_a, "zzz", 9), ExceptionAction::Repeat);
        let err_other = RemoteError::application("Other", "x");
        assert_eq!(
            spec.action_for(&err_other, "m", 0),
            ExceptionAction::Restart
        );
        let err_b = RemoteError::application("B", "x");
        assert_eq!(spec.action_for(&err_b, "n", 2), ExceptionAction::Break);
        assert_eq!(
            spec.action_for(&err_b, "n", 3),
            ExceptionAction::Continue,
            "unmatched index falls to default"
        );
    }

    #[test]
    fn bank_scenario_policy() {
        // Section 5.1: break only when find_credit_account throws
        // DuplicateAccountException at position 0.
        let mut policy = CustomPolicy::new();
        policy.set_default_action(ExceptionAction::Continue);
        policy.set_action(
            "DuplicateAccountException",
            "find_credit_account",
            0,
            ExceptionAction::Break,
        );
        let spec = PolicySpec::from(&policy);
        let dup = RemoteError::application("DuplicateAccountException", "dup");
        assert_eq!(
            spec.action_for(&dup, "find_credit_account", 0),
            ExceptionAction::Break
        );
        let overdraft = RemoteError::application("OverdraftException", "limit");
        assert_eq!(
            spec.action_for(&overdraft, "make_purchase", 1),
            ExceptionAction::Continue
        );
    }

    #[test]
    fn default_custom_policy_breaks() {
        let spec = PolicySpec::from(CustomPolicy::new());
        let err = RemoteError::application("X", "x");
        assert_eq!(spec.action_for(&err, "m", 0), ExceptionAction::Break);
    }
}
