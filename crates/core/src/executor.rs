//! The server half of explicit batching: `invoke_batch` (paper Figure 2).
//!
//! The executor replays recorded calls in order, wiring remote results of
//! earlier calls into the targets and arguments of later ones through a
//! server-local object array — which is precisely how BRMI preserves remote
//! reference identity and avoids marshalling (Section 4.4). Cursors run
//! their sub-batch once per array element (Section 3.4); exception policies
//! decide whether a throwing call breaks, continues, repeats or restarts
//! the batch (Section 3.3); and `flush_and_continue` sessions keep the
//! object array alive between chained batches (Section 3.5).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use brmi_obs::{Counter, MetricsSnapshot, Registry, Snapshot};
use brmi_rmi::{BatchFrameHandler, CallCtx, InArg, OutValue, RemoteObject, RmiServer};
use brmi_wire::invocation::{
    ArgRef, BatchRequestRef, BatchResponse, CallSeq, CursorResult, ErrorEnvelope, ExceptionAction,
    InvocationDataRef, PolicySpec, SessionId, SlotOutcome, Target,
};
use brmi_wire::{RemoteError, RemoteErrorKind, ToValue, Value, ValueRef};
use parking_lot::Mutex;

/// Objects pinned alive between chained batches: remote results by call
/// seq, plus per-element object columns for cursors and their
/// remote-returning members.
#[derive(Default, Clone)]
struct SessionState {
    objects: HashMap<u32, Arc<dyn RemoteObject>>,
    cursor_objects: HashMap<u32, Vec<Option<Arc<dyn RemoteObject>>>>,
}

/// Cumulative counters of server-side batch activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutorStats {
    /// Batches executed (including restart re-runs).
    pub batches: u64,
    /// Calls replayed (cursor members counted once per element).
    pub calls_replayed: u64,
    /// Replayed calls whose skeleton metadata marks them `#[read_only]`
    /// (see [`MethodMeta`](brmi_wire::MethodMeta)) — the executor-side
    /// view of how much of the workload the relay's read cache could
    /// absorb.
    pub read_calls_replayed: u64,
    /// Total cursor elements iterated server-side.
    pub cursor_elements: u64,
}

/// The executor's live metric cells (the `ExecutorStats`-shaped
/// [`BatchExecutor::stats`] accessor is a thin copy of these). Registered
/// under the `executor_*` families — `executor_executions` for batches,
/// `executor_replays` for replayed calls — by
/// [`BatchExecutor::register_metrics`].
#[derive(Debug, Default)]
struct StatsCells {
    batches: Counter,
    calls_replayed: Counter,
    read_calls_replayed: Counter,
    cursor_elements: Counter,
}

/// Server-side batch executor; install on an [`RmiServer`] with
/// [`BatchExecutor::install`].
pub struct BatchExecutor {
    sessions: Mutex<HashMap<u64, SessionState>>,
    next_session: AtomicU64,
    stats: StatsCells,
    max_repeats: u32,
    max_restarts: u32,
    /// Ablation switch: when true, remote results of batched calls are
    /// *also* exported and returned as references, as plain RMI would —
    /// disabling the paper's identity-preservation optimization
    /// (Section 4.4) while keeping batching itself. Used by the ablation
    /// benchmarks to isolate the two effects.
    export_remote_results: bool,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor {
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            stats: StatsCells::default(),
            max_repeats: 3,
            max_restarts: 3,
            export_remote_results: false,
        }
    }
}

impl std::fmt::Debug for BatchExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchExecutor")
            .field("live_sessions", &self.session_count())
            .field("max_repeats", &self.max_repeats)
            .field("max_restarts", &self.max_restarts)
            .finish()
    }
}

impl BatchExecutor {
    /// Creates an executor with the default retry bounds
    /// (3 repeats per call, 3 restarts per batch).
    pub fn new() -> Arc<Self> {
        Arc::new(BatchExecutor::default())
    }

    /// Creates an executor with explicit `Repeat`/`Restart` bounds.
    pub fn with_limits(max_repeats: u32, max_restarts: u32) -> Arc<Self> {
        Arc::new(BatchExecutor {
            max_repeats,
            max_restarts,
            ..BatchExecutor::default()
        })
    }

    /// Creates an ablation executor that exports remote results like RMI
    /// instead of keeping them server-local (see the struct docs).
    pub fn without_identity_preservation() -> Arc<Self> {
        Arc::new(BatchExecutor {
            export_remote_results: true,
            ..BatchExecutor::default()
        })
    }

    /// Installs this executor on a server (for non-default constructors).
    pub fn install_on(self: &Arc<Self>, server: &Arc<RmiServer>) {
        server.set_batch_handler(Arc::clone(self) as Arc<dyn BatchFrameHandler>);
    }

    /// Creates an executor and installs it as `server`'s batch handler —
    /// the analogue of `UnicastRemoteObject` gaining `invokeBatch`, making
    /// every exported object batch-invocable without application changes.
    pub fn install(server: &Arc<RmiServer>) -> Arc<Self> {
        let executor = BatchExecutor::new();
        server.set_batch_handler(Arc::clone(&executor) as Arc<dyn BatchFrameHandler>);
        executor
    }

    /// Number of live chained-batch sessions (test introspection).
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Snapshot of the cumulative execution counters.
    pub fn stats(&self) -> ExecutorStats {
        ExecutorStats {
            batches: self.stats.batches.value(),
            calls_replayed: self.stats.calls_replayed.value(),
            read_calls_replayed: self.stats.read_calls_replayed.value(),
            cursor_elements: self.stats.cursor_elements.value(),
        }
    }

    /// Registers the executor's metric cells with `registry` under the
    /// `executor_*` families (unified naming: batch executions are
    /// `executor_executions`, replayed calls are `executor_replays`, with
    /// the read-only subset labeled `kind="read_only"`).
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("executor_executions", &[], &self.stats.batches);
        registry.register_counter("executor_replays", &[], &self.stats.calls_replayed);
        registry.register_counter(
            "executor_replays",
            &[("kind", "read_only")],
            &self.stats.read_calls_replayed,
        );
        registry.register_counter("executor_cursor_elements", &[], &self.stats.cursor_elements);
    }
}

impl Snapshot for BatchExecutor {
    fn snapshot(&self) -> MetricsSnapshot {
        let registry = Registry::new();
        self.register_metrics(&registry);
        registry.snapshot()
    }
}

impl BatchFrameHandler for BatchExecutor {
    fn invoke_batch(
        &self,
        server: &Arc<RmiServer>,
        request: BatchRequestRef<'_>,
    ) -> Result<BatchResponse, RemoteError> {
        let base = match request.session {
            Some(session) => self.sessions.lock().remove(&session.0).ok_or_else(|| {
                RemoteError::new(
                    RemoteErrorKind::Protocol,
                    format!("unknown batch session {session}"),
                )
            })?,
            None => SessionState::default(),
        };

        let mut restarts = 0u32;
        let output = loop {
            let allow_restart = restarts < self.max_restarts;
            match self.run_once(server, base.clone(), &request, allow_restart) {
                RunResult::Done(output) => break output,
                RunResult::RestartRequested => restarts += 1,
            }
        };

        let session = if request.keep_session {
            let id = request
                .session
                .unwrap_or_else(|| SessionId(self.next_session.fetch_add(1, Ordering::Relaxed)));
            self.sessions.lock().insert(id.0, output.state);
            Some(id)
        } else {
            None
        };

        Ok(BatchResponse {
            session,
            slots: output.slots,
            cursors: output.cursors,
            restarts,
        })
    }

    fn release_session(&self, session: SessionId) {
        self.sessions.lock().remove(&session.0);
    }
}

struct RunOutput {
    slots: Vec<(CallSeq, SlotOutcome)>,
    cursors: Vec<CursorResult>,
    state: SessionState,
}

enum RunResult {
    Done(RunOutput),
    RestartRequested,
}

/// Resolution of one reference to a remote object.
enum Resolved {
    Object(Arc<dyn RemoteObject>),
    /// The referenced call failed; dependents skip with its cause.
    Dependency(ErrorEnvelope),
    /// The reference itself is unusable (unknown id, value-returning call,
    /// missing element): an error attributed to the current call.
    Fault(RemoteError),
}

/// Receiver + arguments ready for dispatch, or why not.
enum Prep {
    Ready(Arc<dyn RemoteObject>, Vec<InArg>),
    Skip(ErrorEnvelope),
    Fault(RemoteError),
}

/// What became of one executed (or attempted) call.
enum Disposition {
    Success(OutValue),
    Failure { env: ErrorEnvelope, brk: bool },
    Restart,
}

/// Why a cursor sub-batch stopped early.
enum CursorAbort {
    Restart,
    Break {
        env: ErrorEnvelope,
        result: CursorResult,
    },
}

/// Per-element context while executing a cursor's sub-batch.
struct ElemCtx<'a> {
    cursor_seq: u32,
    element: &'a Arc<dyn RemoteObject>,
    objects: &'a HashMap<u32, Arc<dyn RemoteObject>>,
    outcomes: &'a HashMap<u32, Option<ErrorEnvelope>>,
}

impl BatchExecutor {
    fn run_once(
        &self,
        server: &Arc<RmiServer>,
        mut state: SessionState,
        request: &BatchRequestRef<'_>,
        allow_restart: bool,
    ) -> RunResult {
        self.stats.batches.inc();
        let calls = &request.calls;
        // cursor seq → indexes of its member calls, in order.
        let mut members_of: HashMap<u32, Vec<usize>> = HashMap::new();
        for (index, call) in calls.iter().enumerate() {
            if let Some(cursor) = call.cursor {
                members_of.entry(cursor.0).or_default().push(index);
            }
        }

        let ctx = server.call_ctx();
        let mut outcomes: HashMap<u32, Option<ErrorEnvelope>> = HashMap::new();
        let mut slots: Vec<(CallSeq, SlotOutcome)> = Vec::with_capacity(calls.len());
        let mut cursors: Vec<CursorResult> = Vec::new();
        let mut break_cause: Option<ErrorEnvelope> = None;

        for (index, call) in calls.iter().enumerate() {
            let seq = call.seq.0;
            if call.cursor.is_some() {
                // Member calls run inside their cursor, below.
                slots.push((call.seq, SlotOutcome::InCursor));
                continue;
            }
            if let Some(cause) = &break_cause {
                slots.push((call.seq, SlotOutcome::Skipped(cause.clone())));
                outcomes.insert(seq, Some(cause.clone()));
                continue;
            }

            let disposition = match self.prepare(server, &state, &outcomes, call, None) {
                Prep::Skip(env) => {
                    slots.push((call.seq, SlotOutcome::Skipped(env.clone())));
                    outcomes.insert(seq, Some(env));
                    continue;
                }
                Prep::Fault(err) => {
                    self.fault_disposition(&err, call, index, &request.policy, allow_restart)
                }
                Prep::Ready(target, in_args) => self.execute_call(
                    &target,
                    call,
                    in_args,
                    index,
                    &request.policy,
                    allow_restart,
                    &ctx,
                ),
            };

            match disposition {
                Disposition::Restart => return RunResult::RestartRequested,
                Disposition::Failure { env, brk } => {
                    slots.push((call.seq, SlotOutcome::Err(env.clone())));
                    outcomes.insert(seq, Some(env.clone()));
                    if brk {
                        break_cause = Some(env);
                    }
                }
                Disposition::Success(out) => {
                    if call.opens_cursor {
                        let elements = match out {
                            OutValue::RemoteList(elements) => elements,
                            _ => {
                                let err = RemoteError::new(
                                    RemoteErrorKind::BadArguments,
                                    format!(
                                        "cursor method {} must return an array of remote objects",
                                        call.method
                                    ),
                                );
                                let disposition = self.fault_disposition(
                                    &err,
                                    call,
                                    index,
                                    &request.policy,
                                    allow_restart,
                                );
                                match disposition {
                                    Disposition::Restart => return RunResult::RestartRequested,
                                    Disposition::Failure { env, brk } => {
                                        slots.push((call.seq, SlotOutcome::Err(env.clone())));
                                        outcomes.insert(seq, Some(env.clone()));
                                        if brk {
                                            break_cause = Some(env);
                                        }
                                    }
                                    Disposition::Success(_) => unreachable!(),
                                }
                                continue;
                            }
                        };
                        slots.push((call.seq, SlotOutcome::Ok(Value::Null)));
                        outcomes.insert(seq, None);
                        let member_idxs = members_of.remove(&seq).unwrap_or_default();
                        match self.run_cursor(
                            server,
                            &ctx,
                            &mut state,
                            calls,
                            &member_idxs,
                            seq,
                            elements,
                            &request.policy,
                            allow_restart,
                            &outcomes,
                        ) {
                            Ok(result) => cursors.push(result),
                            Err(CursorAbort::Restart) => return RunResult::RestartRequested,
                            Err(CursorAbort::Break { env, result }) => {
                                cursors.push(result);
                                break_cause = Some(env);
                            }
                        }
                    } else {
                        let value = match out {
                            OutValue::Data(value) => value,
                            OutValue::Remote(object) => {
                                // Stored server-side; with identity
                                // preservation (Section 4.4) nothing is
                                // marshalled, the ablation mode exports a
                                // reference like RMI would.
                                state.objects.insert(seq, Arc::clone(&object));
                                if self.export_remote_results {
                                    server.marshal_out(OutValue::Remote(object))
                                } else {
                                    Value::Null
                                }
                            }
                            // A remote array outside a cursor context falls
                            // back to RMI semantics: export and reference.
                            other @ OutValue::RemoteList(_) => server.marshal_out(other),
                        };
                        slots.push((call.seq, SlotOutcome::Ok(value)));
                        outcomes.insert(seq, None);
                    }
                }
            }
        }

        RunResult::Done(RunOutput {
            slots,
            cursors,
            state,
        })
    }

    /// Executes one cursor's sub-batch over every element (Section 3.4).
    // The Break abort carries the partial CursorResult by value; it is a
    // cold path, so the large Err variant is fine.
    #[allow(clippy::too_many_arguments, clippy::result_large_err)]
    fn run_cursor(
        &self,
        server: &Arc<RmiServer>,
        ctx: &CallCtx,
        state: &mut SessionState,
        calls: &[InvocationDataRef<'_>],
        member_idxs: &[usize],
        cursor_seq: u32,
        elements: Vec<Arc<dyn RemoteObject>>,
        policy: &PolicySpec,
        allow_restart: bool,
        outer_outcomes: &HashMap<u32, Option<ErrorEnvelope>>,
    ) -> Result<CursorResult, CursorAbort> {
        state
            .cursor_objects
            .insert(cursor_seq, elements.iter().cloned().map(Some).collect());
        let member_seqs: Vec<CallSeq> = member_idxs.iter().map(|&i| calls[i].seq).collect();
        // Per-member columns of remote results, aligned with elements.
        let mut columns: HashMap<u32, Vec<Option<Arc<dyn RemoteObject>>>> = member_seqs
            .iter()
            .map(|seq| (seq.0, Vec::with_capacity(elements.len())))
            .collect();

        let mut rows: Vec<Vec<SlotOutcome>> = Vec::with_capacity(elements.len());
        let mut abort_env: Option<ErrorEnvelope> = None;

        'elements: for element in &elements {
            self.stats.cursor_elements.inc();
            let mut elem_objects: HashMap<u32, Arc<dyn RemoteObject>> = HashMap::new();
            let mut elem_outcomes: HashMap<u32, Option<ErrorEnvelope>> = HashMap::new();
            let mut row: Vec<SlotOutcome> = Vec::with_capacity(member_idxs.len());

            for &member_index in member_idxs {
                let call = &calls[member_index];
                let seq = call.seq.0;
                let elem_ctx = ElemCtx {
                    cursor_seq,
                    element,
                    objects: &elem_objects,
                    outcomes: &elem_outcomes,
                };
                let disposition =
                    match self.prepare(server, state, outer_outcomes, call, Some(&elem_ctx)) {
                        Prep::Skip(env) => {
                            row.push(SlotOutcome::Skipped(env.clone()));
                            elem_outcomes.insert(seq, Some(env));
                            columns.entry(seq).or_default().push(None);
                            continue;
                        }
                        Prep::Fault(err) => {
                            self.fault_disposition(&err, call, member_index, policy, allow_restart)
                        }
                        Prep::Ready(target, in_args) => self.execute_call(
                            &target,
                            call,
                            in_args,
                            member_index,
                            policy,
                            allow_restart,
                            ctx,
                        ),
                    };
                match disposition {
                    Disposition::Restart => return Err(CursorAbort::Restart),
                    Disposition::Failure { env, brk } => {
                        row.push(SlotOutcome::Err(env.clone()));
                        elem_outcomes.insert(seq, Some(env.clone()));
                        columns.entry(seq).or_default().push(None);
                        if brk {
                            // Skip the rest of this row, then stop.
                            while row.len() < member_idxs.len() {
                                row.push(SlotOutcome::Skipped(env.clone()));
                                let skipped_seq = calls[member_idxs[row.len() - 1]].seq.0;
                                columns.entry(skipped_seq).or_default().push(None);
                            }
                            rows.push(row);
                            abort_env = Some(env);
                            break 'elements;
                        }
                    }
                    Disposition::Success(out) => {
                        let value = match out {
                            OutValue::Data(value) => value,
                            OutValue::Remote(object) => {
                                elem_objects.insert(seq, Arc::clone(&object));
                                columns.entry(seq).or_default().push(Some(object));
                                elem_outcomes.insert(seq, None);
                                row.push(SlotOutcome::Ok(Value::Null));
                                continue;
                            }
                            other @ OutValue::RemoteList(_) => server.marshal_out(other),
                        };
                        elem_outcomes.insert(seq, None);
                        columns.entry(seq).or_default().push(None);
                        row.push(SlotOutcome::Ok(value));
                    }
                }
            }
            rows.push(row);
        }

        // Pad aborted executions so the client sees one row per element.
        if let Some(env) = &abort_env {
            while rows.len() < elements.len() {
                rows.push(vec![SlotOutcome::Skipped(env.clone()); member_idxs.len()]);
            }
        }
        for (seq, mut column) in columns {
            column.resize(elements.len(), None);
            state.cursor_objects.insert(seq, column);
        }

        let result = CursorResult {
            cursor_seq: CallSeq(cursor_seq),
            len: elements.len() as u32,
            members: member_seqs,
            rows,
        };
        match abort_env {
            Some(env) => Err(CursorAbort::Break { env, result }),
            None => Ok(result),
        }
    }

    /// Resolves receiver and arguments for one call.
    fn prepare(
        &self,
        server: &Arc<RmiServer>,
        state: &SessionState,
        outcomes: &HashMap<u32, Option<ErrorEnvelope>>,
        call: &InvocationDataRef<'_>,
        elem: Option<&ElemCtx<'_>>,
    ) -> Prep {
        let target = match &call.target {
            Target::Remote(id) => self.resolve_table(server, *id),
            Target::Result(seq) => self.resolve_result(seq.0, state, outcomes, elem),
            Target::CursorElement(seq, index) => self.resolve_element(state, seq.0, *index),
        };
        let target = match target {
            Resolved::Object(object) => object,
            Resolved::Dependency(env) => return Prep::Skip(env),
            Resolved::Fault(err) => return Prep::Fault(err),
        };
        let mut in_args = Vec::with_capacity(call.args.len());
        for arg in &call.args {
            let resolved = match arg {
                ArgRef::Value(ValueRef::RemoteRef(id)) => self.resolve_table(server, *id),
                ArgRef::Value(value) => {
                    // The application boundary: the borrowed payload becomes
                    // an owned value here, and nowhere earlier.
                    in_args.push(InArg::Value(value.to_value()));
                    continue;
                }
                ArgRef::Result(seq) => self.resolve_result(seq.0, state, outcomes, elem),
                ArgRef::CursorElement(seq, index) => self.resolve_element(state, seq.0, *index),
            };
            match resolved {
                Resolved::Object(object) => in_args.push(InArg::Remote(object)),
                Resolved::Dependency(env) => return Prep::Skip(env),
                Resolved::Fault(err) => return Prep::Fault(err),
            }
        }
        Prep::Ready(target, in_args)
    }

    fn resolve_table(&self, server: &Arc<RmiServer>, id: brmi_wire::ObjectId) -> Resolved {
        match server.table().get(id) {
            Some(object) => Resolved::Object(object),
            None => Resolved::Fault(RemoteError::new(
                RemoteErrorKind::NoSuchObject,
                format!("no exported object {id}"),
            )),
        }
    }

    fn resolve_result(
        &self,
        seq: u32,
        state: &SessionState,
        outcomes: &HashMap<u32, Option<ErrorEnvelope>>,
        elem: Option<&ElemCtx<'_>>,
    ) -> Resolved {
        if let Some(elem) = elem {
            if seq == elem.cursor_seq {
                return Resolved::Object(Arc::clone(elem.element));
            }
            if let Some(object) = elem.objects.get(&seq) {
                return Resolved::Object(Arc::clone(object));
            }
            if let Some(Some(env)) = elem.outcomes.get(&seq) {
                return Resolved::Dependency(env.clone());
            }
        }
        if let Some(object) = state.objects.get(&seq) {
            return Resolved::Object(Arc::clone(object));
        }
        match outcomes.get(&seq) {
            Some(Some(env)) => Resolved::Dependency(env.clone()),
            Some(None) => Resolved::Fault(RemoteError::new(
                RemoteErrorKind::BadArguments,
                format!("call {seq} did not produce a remote object"),
            )),
            None => Resolved::Fault(RemoteError::new(
                RemoteErrorKind::Protocol,
                format!("reference to unknown call {seq}"),
            )),
        }
    }

    fn resolve_element(&self, state: &SessionState, seq: u32, index: u32) -> Resolved {
        match state
            .cursor_objects
            .get(&seq)
            .and_then(|column| column.get(index as usize))
        {
            Some(Some(object)) => Resolved::Object(Arc::clone(object)),
            Some(None) => Resolved::Fault(RemoteError::new(
                RemoteErrorKind::BadArguments,
                format!("cursor call {seq} has no object for element {index}"),
            )),
            None => Resolved::Fault(RemoteError::new(
                RemoteErrorKind::Protocol,
                format!("unknown cursor element {seq}[{index}]"),
            )),
        }
    }

    /// Invokes one call, applying the exception policy on failure
    /// (including bounded `Repeat`).
    #[allow(clippy::too_many_arguments)]
    fn execute_call(
        &self,
        target: &Arc<dyn RemoteObject>,
        call: &InvocationDataRef<'_>,
        in_args: Vec<InArg>,
        index: usize,
        policy: &PolicySpec,
        allow_restart: bool,
        ctx: &CallCtx,
    ) -> Disposition {
        self.count_replayed(target, call.method);
        let mut attempts = 0u32;
        loop {
            match target.invoke(call.method, in_args.clone(), ctx) {
                Ok(out) => return Disposition::Success(out),
                Err(err) => {
                    let action = policy.action_for(&err, call.method, index as u32);
                    let env = ErrorEnvelope::from(&err);
                    match action {
                        ExceptionAction::Break => return Disposition::Failure { env, brk: true },
                        ExceptionAction::Continue => {
                            return Disposition::Failure { env, brk: false }
                        }
                        ExceptionAction::Repeat => {
                            attempts += 1;
                            if attempts > self.max_repeats {
                                return Disposition::Failure { env, brk: true };
                            }
                        }
                        ExceptionAction::Restart => {
                            if allow_restart {
                                return Disposition::Restart;
                            }
                            return Disposition::Failure { env, brk: true };
                        }
                    }
                }
            }
        }
    }

    /// Counts one dispatched call, classifying it read/write through the
    /// receiver's own method table rather than by method-name string.
    fn count_replayed(&self, target: &Arc<dyn RemoteObject>, method: &str) {
        self.stats.calls_replayed.inc();
        if target
            .method_meta(method)
            .is_some_and(|meta| meta.read_only)
        {
            self.stats.read_calls_replayed.inc();
        }
    }

    /// Policy handling for errors raised before the method could run
    /// (resolution faults). `Repeat` cannot help, so it degrades to Break.
    fn fault_disposition(
        &self,
        err: &RemoteError,
        call: &InvocationDataRef<'_>,
        index: usize,
        policy: &PolicySpec,
        allow_restart: bool,
    ) -> Disposition {
        let env = ErrorEnvelope::from(err);
        match policy.action_for(err, call.method, index as u32) {
            ExceptionAction::Continue => Disposition::Failure { env, brk: false },
            ExceptionAction::Restart if allow_restart => Disposition::Restart,
            _ => Disposition::Failure { env, brk: true },
        }
    }
}
