//! Futures populated by batch execution.
//!
//! A [`BatchFuture`] is the placeholder returned by every value-returning
//! batched call (paper Section 2): empty until `flush`, then holding either
//! the call's result or the exception it — or anything it depends on —
//! raised. Futures created inside a cursor change value on every
//! `next()` (Section 4.3).

use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

use brmi_wire::{FromValue, RemoteError, RemoteErrorKind, Value};
use parking_lot::Mutex;

/// Completion cell for one pipelined flush ([`Batch::flush_async`]): the
/// worker thread performing the round trip completes it after the
/// response has been applied to every slot, and anyone joining the flush —
/// the [`PendingFlush`] handle or a future touched before the reply
/// arrived — blocks here.
///
/// [`Batch::flush_async`]: crate::Batch::flush_async
/// [`PendingFlush`]: crate::batch::PendingFlush
#[derive(Debug)]
pub(crate) struct FlushGate {
    result: StdMutex<Option<Result<(), RemoteError>>>,
    done: Condvar,
}

impl FlushGate {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(FlushGate {
            result: StdMutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Publishes the flush outcome and wakes every waiter. Call only after
    /// the response (or failure) has been applied to the slots.
    pub(crate) fn complete(&self, result: Result<(), RemoteError>) {
        *self.result.lock().expect("flush gate lock") = Some(result);
        self.done.notify_all();
    }

    /// Blocks until the flush completes; returns its outcome.
    pub(crate) fn wait(&self) -> Result<(), RemoteError> {
        let mut guard = self.result.lock().expect("flush gate lock");
        loop {
            if let Some(result) = guard.as_ref() {
                return result.clone();
            }
            guard = self.done.wait(guard).expect("flush gate lock");
        }
    }

    /// The outcome if the flush has completed, without blocking.
    pub(crate) fn try_result(&self) -> Option<Result<(), RemoteError>> {
        self.result.lock().expect("flush gate lock").clone()
    }
}

/// The shared state behind one future (and behind stub `ok()` checks).
#[derive(Debug)]
pub(crate) struct FutureSlot {
    state: Mutex<SlotState>,
    /// Set while a pipelined flush covering this slot is in flight; the
    /// first `get()`/`ok()` touch claims the reply by waiting on it
    /// (paper-style "replies claimed on first future touch").
    flush: Mutex<Option<Arc<FlushGate>>>,
}

#[derive(Debug, Clone)]
pub(crate) enum SlotState {
    /// No result yet: the batch has not been flushed (or the cursor not
    /// advanced).
    Pending,
    /// The call succeeded with this value.
    Ready(Value),
    /// The call failed, or something it depends on failed.
    Failed(RemoteError),
}

impl FutureSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(FutureSlot {
            state: Mutex::new(SlotState::Pending),
            flush: Mutex::new(None),
        })
    }

    /// Marks this slot as covered by an in-flight pipelined flush.
    pub(crate) fn attach_flush(&self, gate: Arc<FlushGate>) {
        *self.flush.lock() = Some(gate);
    }

    /// Claims the slot's value: when a pipelined flush is in flight, a
    /// touch blocks until the flush completes (the worker populates every
    /// slot before releasing waiters), then re-reads the state.
    ///
    /// The gate is *cloned*, not taken: any number of threads may touch
    /// futures of the same segment concurrently, and each must find the
    /// gate to wait on. It is cleared only after the wait, once the flush
    /// is known to be complete.
    pub(crate) fn claim(&self) -> SlotState {
        if !matches!(self.snapshot(), SlotState::Pending) {
            return self.snapshot();
        }
        let gate = self.flush.lock().clone();
        if let Some(gate) = gate {
            let _ = gate.wait();
            *self.flush.lock() = None;
        }
        // Re-read either way: a flush may have applied the result between
        // the first snapshot and the gate lookup.
        self.snapshot()
    }

    pub(crate) fn set_ready(&self, value: Value) {
        *self.state.lock() = SlotState::Ready(value);
    }

    pub(crate) fn set_failed(&self, error: RemoteError) {
        *self.state.lock() = SlotState::Failed(error);
    }

    pub(crate) fn snapshot(&self) -> SlotState {
        self.state.lock().clone()
    }

    /// The `ok()` view: succeeded, failed, or not yet executed. Claims the
    /// reply of an in-flight pipelined flush first.
    pub(crate) fn check(&self) -> Result<(), RemoteError> {
        match self.claim() {
            SlotState::Pending => Err(not_flushed()),
            SlotState::Ready(_) => Ok(()),
            SlotState::Failed(err) => Err(err),
        }
    }

    /// As [`FutureSlot::check`] but *without* claiming an in-flight flush —
    /// for callers inside the flush-apply path itself, where waiting on the
    /// current flush's own gate would self-deadlock.
    pub(crate) fn check_applied(&self) -> Result<(), RemoteError> {
        match self.snapshot() {
            SlotState::Pending => Err(not_flushed()),
            SlotState::Ready(_) => Ok(()),
            SlotState::Failed(err) => Err(err),
        }
    }

    /// Failure-only view: `Err` when the slot holds a failure, `Ok` for
    /// both pending and ready slots.
    pub(crate) fn check_failed(&self) -> Result<(), RemoteError> {
        match self.snapshot() {
            SlotState::Failed(err) => Err(err),
            _ => Ok(()),
        }
    }
}

pub(crate) fn not_flushed() -> RemoteError {
    RemoteError::new(
        RemoteErrorKind::Protocol,
        "future accessed before the batch was flushed",
    )
}

/// A typed placeholder for the result of one batched call.
///
/// Call [`get`](BatchFuture::get) after `flush` to obtain the value.
///
/// # Example
///
/// ```no_run
/// # use brmi::BatchFuture;
/// # fn demo(name: BatchFuture<String>, size: BatchFuture<i64>) -> Result<(), brmi_wire::RemoteError> {
/// // after batch.flush():
/// println!("file {} size: {}", name.get()?, size.get()?);
/// # Ok(())
/// # }
/// ```
pub struct BatchFuture<T> {
    slot: Arc<FutureSlot>,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for BatchFuture<T> {
    fn clone(&self) -> Self {
        BatchFuture {
            slot: Arc::clone(&self.slot),
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for BatchFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.slot.snapshot() {
            SlotState::Pending => "pending",
            SlotState::Ready(_) => "ready",
            SlotState::Failed(_) => "failed",
        };
        f.debug_struct("BatchFuture")
            .field("state", &state)
            .finish()
    }
}

impl<T: FromValue> BatchFuture<T> {
    pub(crate) fn from_slot(slot: Arc<FutureSlot>) -> Self {
        BatchFuture {
            slot,
            _marker: PhantomData,
        }
    }

    /// Retrieves the value.
    ///
    /// # Errors
    ///
    /// * before `flush` (or before `next()` for cursor futures) — a
    ///   protocol error;
    /// * when the call threw — that exception;
    /// * when any call this result depends on threw — that exception,
    ///   re-thrown here (paper Section 3.3);
    /// * when the value cannot convert to `T` — a marshalling error.
    ///
    /// When the batch was shipped with [`Batch::flush_async`], the first
    /// touch of any of its futures blocks until the in-flight round trip
    /// completes, then behaves as above.
    ///
    /// [`Batch::flush_async`]: crate::Batch::flush_async
    pub fn get(&self) -> Result<T, RemoteError> {
        match self.slot.claim() {
            SlotState::Pending => Err(not_flushed()),
            SlotState::Ready(value) => T::from_value(value),
            SlotState::Failed(err) => Err(err),
        }
    }

    /// True once the future holds a value or an error.
    pub fn is_done(&self) -> bool {
        !matches!(self.slot.snapshot(), SlotState::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_future_refuses_get() {
        let fut: BatchFuture<i32> = BatchFuture::from_slot(FutureSlot::new());
        let err = fut.get().unwrap_err();
        assert_eq!(err.kind(), RemoteErrorKind::Protocol);
        assert!(!fut.is_done());
    }

    #[test]
    fn ready_future_converts_value() {
        let slot = FutureSlot::new();
        slot.set_ready(Value::I32(41));
        let fut: BatchFuture<i32> = BatchFuture::from_slot(slot);
        assert_eq!(fut.get().unwrap(), 41);
        assert!(fut.is_done());
        // get is repeatable
        assert_eq!(fut.get().unwrap(), 41);
    }

    #[test]
    fn failed_future_rethrows() {
        let slot = FutureSlot::new();
        slot.set_failed(RemoteError::application("PermissionError", "denied"));
        let fut: BatchFuture<String> = BatchFuture::from_slot(slot);
        let err = fut.get().unwrap_err();
        assert_eq!(err.exception(), "PermissionError");
    }

    #[test]
    fn type_mismatch_is_marshal_error() {
        let slot = FutureSlot::new();
        slot.set_ready(Value::Str("x".into()));
        let fut: BatchFuture<i32> = BatchFuture::from_slot(slot);
        let err = fut.get().unwrap_err();
        assert_eq!(err.kind(), RemoteErrorKind::BadArguments);
    }

    #[test]
    fn cursor_style_reassignment_changes_value() {
        let slot = FutureSlot::new();
        let fut: BatchFuture<i64> = BatchFuture::from_slot(Arc::clone(&slot));
        slot.set_ready(Value::I64(1));
        assert_eq!(fut.get().unwrap(), 1);
        slot.set_ready(Value::I64(2));
        assert_eq!(fut.get().unwrap(), 2);
        slot.set_failed(RemoteError::application("E", "gone"));
        assert!(fut.get().is_err());
    }

    #[test]
    fn clones_share_the_slot() {
        let slot = FutureSlot::new();
        let fut: BatchFuture<i32> = BatchFuture::from_slot(Arc::clone(&slot));
        let cloned = fut.clone();
        slot.set_ready(Value::I32(9));
        assert_eq!(cloned.get().unwrap(), 9);
    }

    #[test]
    fn check_mirrors_states() {
        let slot = FutureSlot::new();
        assert!(slot.check().is_err());
        slot.set_ready(Value::Null);
        assert!(slot.check().is_ok());
        slot.set_failed(RemoteError::application("E", "x"));
        assert!(slot.check().is_err());
    }

    #[test]
    fn debug_shows_state() {
        let slot = FutureSlot::new();
        let fut: BatchFuture<i32> = BatchFuture::from_slot(Arc::clone(&slot));
        assert!(format!("{fut:?}").contains("pending"));
        slot.set_ready(Value::I32(1));
        assert!(format!("{fut:?}").contains("ready"));
    }
}
