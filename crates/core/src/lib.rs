//! # brmi — Batched Remote Method Invocation
//!
//! A Rust reproduction of **"Explicit Batching for Distributed Objects"**
//! (Eli Tilevich and William R. Cook, ICDCS 2009). BRMI extends the RMI
//! substrate in [`brmi_rmi`] with *explicit batching*: clients record
//! multiple remote method calls — across any number of objects — and ship
//! them to the server in a single round trip.
//!
//! The pieces, mapped to the paper:
//!
//! * [`remote_interface!`] — the interface generator (`rmic -batch`,
//!   Section 3.2): derives batch interfaces (`BFoo`), cursors (`CFoo`),
//!   RMI stubs, skeletons and loopback proxies from one declaration.
//! * [`Batch`] / [`BatchStub`] — invocation monitoring (Section 4.1):
//!   calls are recorded, futures returned.
//! * [`BatchFuture`] — placeholders populated at `flush`; `get`
//!   re-throws exceptions of anything the value depends on (Section 3.3).
//! * [`policy`] — `Abort` / `Continue` / `Custom` exception policies with
//!   `Break` / `Continue` / `Repeat` / `Restart` actions (Section 3.3).
//! * [`CursorHandle`] — array cursors: one batch operates on every element
//!   of a server-side array, then iterates the results (Section 3.4).
//! * [`Batch::flush_and_continue`] — chained batches over a server-side
//!   session (Section 3.5).
//! * [`BatchExecutor`] — the server runtime (`invokeBatch`, Figure 2),
//!   which also preserves remote reference identity (Section 4.4).
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use brmi::{remote_interface, Batch, BatchExecutor};
//! use brmi::policy::AbortPolicy;
//! use brmi_rmi::{Connection, RmiServer};
//! use brmi_transport::inproc::InProcTransport;
//! use brmi_wire::RemoteError;
//!
//! remote_interface! {
//!     pub interface Greeter {
//!         fn greet(name: String) -> String;
//!     }
//! }
//!
//! struct English;
//! impl Greeter for English {
//!     fn greet(&self, name: String) -> Result<String, RemoteError> {
//!         Ok(format!("hello, {name}"))
//!     }
//! }
//!
//! # fn main() -> Result<(), RemoteError> {
//! // Server: export the service and enable batching.
//! let server = RmiServer::new();
//! BatchExecutor::install(&server);
//! server.bind("greeter", GreeterSkeleton::remote_arc(Arc::new(English)))?;
//!
//! // Client: look up the service and run a batch.
//! let conn = Connection::new(Arc::new(InProcTransport::new(server.clone())));
//! let remote = conn.lookup("greeter")?;
//! let batch = Batch::new(conn, AbortPolicy);
//! let greeter = BGreeter::new(&batch, &remote);
//! let alice = greeter.greet("alice".into());
//! let bob = greeter.greet("bob".into());
//! batch.flush()?; // one round trip for both calls
//! assert_eq!(alice.get()?, "hello, alice");
//! assert_eq!(bob.get()?, "hello, bob");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod executor;
pub mod future;
pub mod interface;
pub mod macros;
pub mod policy;
pub mod stats;
pub mod stub;

pub use batch::{Batch, PendingFlush};
pub use executor::BatchExecutor;
pub use future::BatchFuture;
pub use interface::{BatchCtor, BatchParam, Companions, CursorCtor, StubCtor};
pub use stats::BatchStats;
pub use stub::{BatchStub, CursorHandle, RecordArg};

/// Runtime support for macro-generated code. Not part of the public API.
#[doc(hidden)]
pub mod __rt {
    pub use crate::interface::{
        expect_ref_list, expect_remote_ref, loopback_arg_id, value_arg, wrong_remote_type,
    };
    pub use brmi_rmi::{
        bad_arity, no_such_method, CallCtx, Connection, InArg, Loopback, OutValue, RemoteObject,
        RemoteRef,
    };
    pub use brmi_wire::{
        FromValue, InterfaceMeta, MethodMeta, ObjectId, RemoteError, ToValue, Value,
    };
    pub use paste::paste;
    pub use std::any::Any;
    pub use std::sync::Arc;
}
