//! The fetcher's semantic bar, as a property: for arbitrary programs of
//! cached balance reads interleaved with invalidating purchases, execution
//! through a [`BatchFetcher`] is observably identical to direct execution
//! — per-op outcomes and final server state — for any concurrent client
//! mix, and a faulty fetcher→origin link never lets the cache serve a
//! value the origin does not hold (a dropped write must not leave a stale
//! entry behind, and a dropped read probe must not poison later hits).

use std::sync::{Arc, Barrier};
use std::time::Duration;

use brmi::policy::AbortPolicy;
use brmi::{Batch, BatchExecutor};
use brmi_apps::bank::{
    BCreditCard, Bank, CreditCardSkeleton, CreditManagerSkeleton, CreditManagerStub,
};
use brmi_apps::testkit::AppRig;
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::fault::{FaultPlan, FaultyTransport};
use brmi_transport::fetcher::BatchFetcher;
use brmi_transport::inproc::InProcTransport;
use brmi_transport::relay::ReadCachePolicy;
use brmi_transport::{RequestHandler, Transport};
use brmi_wire::invocation::ErrorEnvelope;
use brmi_wire::protocol::Frame;
use brmi_wire::{MethodRegistry, RemoteError};
use proptest::prelude::*;

const ACCOUNT_LIMIT: f64 = 100.0;

/// One client step: an invalidating write or a cacheable read.
#[derive(Debug, Clone, Copy)]
enum Op {
    Purchase(f64),
    Check,
}

/// What one step observed: `Ok(None)` a successful purchase, `Ok(Some(v))`
/// a balance read, `Err(exception)` any failure.
type Observation = Result<Option<f64>, String>;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1i32..40).prop_map(|v| Op::Purchase(f64::from(v))),
        1 => Just(Op::Purchase(-4.0)),
        1 => Just(Op::Purchase(ACCOUNT_LIMIT + 400.0)),
        4 => Just(Op::Check),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 1..12)
}

fn bank_registry() -> Arc<MethodRegistry> {
    Arc::new(MethodRegistry::of(&[
        CreditCardSkeleton::INTERFACE_META,
        CreditManagerSkeleton::INTERFACE_META,
    ]))
}

fn generous_cache() -> ReadCachePolicy {
    ReadCachePolicy {
        ttl: Duration::from_secs(300),
        capacity: 256,
    }
}

fn account_ref(root: &RemoteRef, customer: &str) -> RemoteRef {
    CreditManagerStub::new(root.clone())
        .find_credit_account(customer.to_owned())
        .expect("account exists")
        .remote_ref()
        .clone()
}

/// Runs one program sequentially against its account.
fn run_ops(conn: &Connection, account: &RemoteRef, ops: &[Op]) -> Vec<Observation> {
    ops.iter()
        .map(|op| match op {
            Op::Purchase(amount) => {
                let batch = Batch::new(conn.clone(), AbortPolicy);
                let purchase = BCreditCard::new(&batch, account).make_purchase(*amount);
                match batch.flush() {
                    Ok(()) => match purchase.get() {
                        Ok(()) => Ok(None),
                        Err(err) => Err(err.exception().to_owned()),
                    },
                    Err(err) => Err(err.exception().to_owned()),
                }
            }
            Op::Check => {
                let batch = Batch::new(conn.clone(), AbortPolicy);
                let balance = BCreditCard::new(&batch, account).get_balance();
                match batch.flush() {
                    Ok(()) => match balance.get() {
                        Ok(value) => Ok(Some(value)),
                        Err(err) => Err(err.exception().to_owned()),
                    },
                    Err(err) => Err(err.exception().to_owned()),
                }
            }
        })
        .collect()
}

/// Direct reference execution: sequential, no fetcher.
fn run_direct(programs: &[Vec<Op>]) -> (Vec<Vec<Observation>>, Vec<Option<f64>>) {
    let bank = Bank::new();
    let rig = AppRig::serve("bank", CreditManagerSkeleton::remote_arc(bank.clone()));
    let observations = programs
        .iter()
        .enumerate()
        .map(|(i, ops)| {
            let customer = format!("cust{i}");
            bank.open_account(&customer, ACCOUNT_LIMIT);
            let account = account_ref(&rig.root, &customer);
            run_ops(&rig.conn, &account, ops)
        })
        .collect();
    let balances = (0..programs.len())
        .map(|i| bank.balance_of(&format!("cust{i}")))
        .collect();
    (observations, balances)
}

/// Fetched execution: one concurrent client thread per program, all
/// sharing one [`BatchFetcher`] over the origin.
fn run_fetched(programs: &[Vec<Op>]) -> (Vec<Vec<Observation>>, Vec<Option<f64>>) {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    for i in 0..programs.len() {
        bank.open_account(&format!("cust{i}"), ACCOUNT_LIMIT);
    }
    let fetcher = BatchFetcher::new(
        origin as Arc<dyn RequestHandler>,
        bank_registry(),
        generous_cache(),
    );
    let client_transport = Arc::new(InProcTransport::new(fetcher as Arc<dyn RequestHandler>));

    let gate = Arc::new(Barrier::new(programs.len()));
    let handles: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(i, ops)| {
            let transport = Arc::clone(&client_transport);
            let gate = Arc::clone(&gate);
            let ops = ops.clone();
            std::thread::spawn(move || {
                let conn = Connection::new(transport);
                let root = conn.lookup("bank").expect("lookup through fetcher");
                let customer = format!("cust{i}");
                let account = account_ref(&root, &customer);
                gate.wait();
                run_ops(&conn, &account, &ops)
            })
        })
        .collect();
    let observations = handles
        .into_iter()
        .map(|handle| handle.join().expect("fetched client panicked"))
        .collect();
    let balances = (0..programs.len())
        .map(|i| bank.balance_of(&format!("cust{i}")))
        .collect();
    (observations, balances)
}

/// Adapts a [`Transport`] back into a [`RequestHandler`] so fault
/// injection can sit *between* the fetcher and the origin.
struct HandlerOverTransport<T>(T);

impl<T: Transport> RequestHandler for HandlerOverTransport<T> {
    fn handle(&self, frame: Frame) -> Frame {
        match self.0.request(frame) {
            Ok(reply) => reply,
            Err(err) => Frame::Error(ErrorEnvelope::from(&err)),
        }
    }
}

/// Faulty-link execution with a running model: every successful write is
/// applied to the model, every successful read must equal it, and the
/// origin's final balance must too — so a dropped write can never leave a
/// servable stale entry, whatever the cache did in between.
fn run_faulty_against_model(ops: &[Op], every_nth: u64) {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let bank = Bank::new();
    bank.open_account("solo", f64::MAX / 4.0); // overdrafts out of the picture
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");

    let faulty = FaultyTransport::new(
        InProcTransport::new(origin as Arc<dyn RequestHandler>),
        FaultPlan::EveryNth(every_nth),
    );
    let fetcher = BatchFetcher::new(
        Arc::new(HandlerOverTransport(faulty)) as Arc<dyn RequestHandler>,
        bank_registry(),
        generous_cache(),
    );
    let conn = Connection::new(Arc::new(InProcTransport::new(
        fetcher as Arc<dyn RequestHandler>,
    )));

    // Resolution itself crosses the faulty link; with `EveryNth(n >= 2)`
    // one retry always lands on a good slot.
    let retry = |action: &dyn Fn() -> Result<RemoteRef, RemoteError>| {
        action().or_else(|_| action()).expect("second try clears")
    };
    let root = retry(&|| conn.lookup("bank"));
    let account = retry(&|| {
        CreditManagerStub::new(root.clone())
            .find_credit_account("solo".into())
            .map(|stub| stub.remote_ref().clone())
    });

    let mut model = 0.0f64;
    for (step, observation) in run_ops(&conn, &account, ops).into_iter().enumerate() {
        match (ops[step], observation) {
            (Op::Purchase(amount), Ok(None)) => model += amount,
            (Op::Purchase(_), Ok(Some(value))) => {
                panic!("step {step}: purchase returned a value {value}")
            }
            // A failed write was dropped before the origin: no state
            // change anywhere, by construction of the fault plan.
            (Op::Purchase(_), Err(_)) => {}
            (Op::Check, Ok(Some(value))) => {
                assert_eq!(
                    value, model,
                    "step {step}: read {value} but origin holds {model}"
                );
            }
            (Op::Check, Ok(None)) => panic!("step {step}: read returned no value"),
            // A dropped read tells us nothing; the next one must be right.
            (Op::Check, Err(_)) => {}
        }
    }
    assert_eq!(bank.balance_of("solo"), Some(model));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Concurrent cached reads interleaved with invalidating writes: every
    /// per-op observation and final balance agrees with sequential direct
    /// execution (each program owns its account, so the comparison is
    /// exact).
    #[test]
    fn bank_programs_direct_equals_fetched(
        programs in proptest::collection::vec(arb_program(), 1..4),
    ) {
        let (direct_obs, direct_balances) = run_direct(&programs);
        let (fetched_obs, fetched_balances) = run_fetched(&programs);
        prop_assert_eq!(fetched_obs, direct_obs);
        prop_assert_eq!(fetched_balances, direct_balances);
    }

    /// Under a lossy fetcher→origin link, successful reads always report
    /// the origin's true balance: dropped writes invalidate without
    /// executing, dropped probes surface as errors, and neither leaves a
    /// stale cache entry a later hit could serve.
    #[test]
    fn lossy_link_never_serves_a_value_the_origin_does_not_hold(
        ops in proptest::collection::vec(arb_op(), 1..16),
        every_nth in 2u64..6,
    ) {
        run_faulty_against_model(&ops, every_nth);
    }
}
