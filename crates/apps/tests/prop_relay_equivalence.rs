//! The relay's semantic bar, as a property: for arbitrary programs over
//! the bank and list services, execution through a client → edge → origin
//! relay is observably identical to direct execution — per-call results,
//! exception (abort) cursors, and final server state — for *any* relay
//! coalescing policy.
//!
//! Programs run on concurrent client threads behind the relay (so batches
//! really coalesce across connections), but each program owns disjoint
//! server state, so its observations must match the sequential direct run
//! regardless of how the edge groups the traffic.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use brmi::BatchExecutor;
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton, SessionReport};
use brmi_apps::list::{brmi_nth_value, ListNode, RemoteListSkeleton};
use brmi_apps::testkit::AppRig;
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::relay::{BatchRelay, RelayPolicy};
use proptest::prelude::*;

const ACCOUNT_LIMIT: f64 = 100.0;

/// One purchase amount: valid spends, an invalid (negative) amount, and an
/// overdraft-forcing amount, so sessions exercise the policy's continue
/// and break behaviour.
fn arb_amount() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => (1i32..60).prop_map(f64::from),
        1 => Just(-4.0),
        1 => Just(ACCOUNT_LIMIT + 400.0),
    ]
}

/// One program: a sequence of purchase sessions (each one batch chain).
fn arb_bank_program() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(arb_amount(), 0..5), 1..4)
}

fn relay_policy(budget: usize) -> RelayPolicy {
    RelayPolicy::builder()
        .max_coalesced_calls(budget)
        .max_delay(Duration::from_millis(1))
        .build()
}

/// Direct reference execution: programs run sequentially against a plain
/// in-process rig.
fn run_bank_direct(programs: &[Vec<Vec<f64>>]) -> (Vec<Vec<SessionReport>>, Vec<Option<f64>>) {
    let bank = Bank::new();
    let rig = AppRig::serve("bank", CreditManagerSkeleton::remote_arc(bank.clone()));
    let reports = programs
        .iter()
        .enumerate()
        .map(|(i, program)| {
            let customer = format!("cust{i}");
            bank.open_account(&customer, ACCOUNT_LIMIT);
            program
                .iter()
                .map(|session| {
                    brmi_purchase_session(&rig.conn, &rig.root, &customer, session)
                        .expect("in-process session cannot fail")
                })
                .collect()
        })
        .collect();
    let balances = (0..programs.len())
        .map(|i| bank.balance_of(&format!("cust{i}")))
        .collect();
    (reports, balances)
}

/// Relayed execution: one concurrent client thread per program behind a
/// [`BatchRelay`] with the given coalescing budget.
fn run_bank_relayed(
    programs: &[Vec<Vec<f64>>],
    budget: usize,
) -> (Vec<Vec<SessionReport>>, Vec<Option<f64>>) {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    for i in 0..programs.len() {
        bank.open_account(&format!("cust{i}"), ACCOUNT_LIMIT);
    }
    let upstream = Arc::new(InProcTransport::new(origin));
    let relay = BatchRelay::new(upstream, relay_policy(budget));
    let client_transport = Arc::new(InProcTransport::new(relay.clone()));

    let gate = Arc::new(Barrier::new(programs.len()));
    let handles: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(i, program)| {
            let transport = Arc::clone(&client_transport);
            let gate = Arc::clone(&gate);
            let program = program.clone();
            std::thread::spawn(move || {
                let conn = Connection::new(transport);
                let root = conn.lookup("bank").expect("lookup through relay");
                let customer = format!("cust{i}");
                gate.wait();
                program
                    .iter()
                    .map(|session| {
                        brmi_purchase_session(&conn, &root, &customer, session)
                            .expect("relayed session cannot fail")
                    })
                    .collect::<Vec<SessionReport>>()
            })
        })
        .collect();
    let reports = handles
        .into_iter()
        .map(|handle| handle.join().expect("relayed client panicked"))
        .collect();
    let balances = (0..programs.len())
        .map(|i| bank.balance_of(&format!("cust{i}")))
        .collect();
    relay.shutdown();
    (reports, balances)
}

/// One list program: the chain node values plus the traversal depths to
/// query (some past the tail, so `EndOfListException` paths are covered).
fn arb_list_program() -> impl Strategy<Value = (Vec<i32>, Vec<usize>)> {
    (
        proptest::collection::vec(-50i32..50, 1..5),
        proptest::collection::vec(0usize..7, 1..5),
    )
}

type ListObservation = Vec<Result<i32, String>>;

fn observe_list(
    conn: &Connection,
    root: &brmi_rmi::RemoteRef,
    depths: &[usize],
) -> ListObservation {
    depths
        .iter()
        .map(|&n| brmi_nth_value(conn, root, n).map_err(|err| err.exception().to_owned()))
        .collect()
}

fn run_list_direct(programs: &[(Vec<i32>, Vec<usize>)]) -> Vec<ListObservation> {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    for (i, (values, _)) in programs.iter().enumerate() {
        server
            .bind(
                &format!("list{i}"),
                RemoteListSkeleton::remote_arc(ListNode::chain(values)),
            )
            .expect("fresh bind");
    }
    let conn = Connection::new(Arc::new(InProcTransport::new(server)));
    programs
        .iter()
        .enumerate()
        .map(|(i, (_, depths))| {
            let root = conn.lookup(&format!("list{i}")).expect("lookup");
            observe_list(&conn, &root, depths)
        })
        .collect()
}

fn run_list_relayed(programs: &[(Vec<i32>, Vec<usize>)], budget: usize) -> Vec<ListObservation> {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    for (i, (values, _)) in programs.iter().enumerate() {
        origin
            .bind(
                &format!("list{i}"),
                RemoteListSkeleton::remote_arc(ListNode::chain(values)),
            )
            .expect("fresh bind");
    }
    let upstream = Arc::new(InProcTransport::new(origin));
    let relay = BatchRelay::new(upstream, relay_policy(budget));
    let client_transport = Arc::new(InProcTransport::new(relay.clone()));

    let gate = Arc::new(Barrier::new(programs.len()));
    let handles: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(i, (_, depths))| {
            let transport = Arc::clone(&client_transport);
            let gate = Arc::clone(&gate);
            let depths = depths.clone();
            std::thread::spawn(move || {
                let conn = Connection::new(transport);
                let root = conn.lookup(&format!("list{i}")).expect("lookup");
                gate.wait();
                observe_list(&conn, &root, &depths)
            })
        })
        .collect();
    let observations = handles
        .into_iter()
        .map(|handle| handle.join().expect("relayed client panicked"))
        .collect();
    relay.shutdown();
    observations
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bank service: per-session reports (purchase outcomes + the credit
    /// line, i.e. where the abort cursor landed) and final balances agree
    /// between direct and relayed execution for any coalescing budget.
    #[test]
    fn bank_programs_direct_equals_relayed(
        programs in proptest::collection::vec(arb_bank_program(), 1..4),
        budget in 1usize..24,
    ) {
        let (direct_reports, direct_balances) = run_bank_direct(&programs);
        let (relayed_reports, relayed_balances) = run_bank_relayed(&programs, budget);
        prop_assert_eq!(relayed_reports, direct_reports);
        prop_assert_eq!(relayed_balances, direct_balances);
    }

    /// List service: traversal values and `EndOfListException` cursors
    /// agree between direct and relayed execution.
    #[test]
    fn list_programs_direct_equals_relayed(
        programs in proptest::collection::vec(arb_list_program(), 1..4),
        budget in 1usize..16,
    ) {
        let direct = run_list_direct(&programs);
        let relayed = run_list_relayed(&programs, budget);
        prop_assert_eq!(relayed, direct);
    }
}
