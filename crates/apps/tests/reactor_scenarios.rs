//! Every case-study scenario over the reactor transport.
//!
//! The blocking `TcpServer` already proves the middleware works over real
//! sockets; this suite proves the epoll reactor server is a drop-in
//! replacement — bank, list and translator clients (RMI and BRMI alike)
//! behave identically over it, concurrent clients multiplex onto a fixed
//! set of reactor threads, and the server sustains well over a hundred
//! simultaneous connections with no thread per connection.

#![cfg(target_os = "linux")]

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::bank::{
    brmi_purchase_session, rmi_purchase_session, Bank, CreditManagerSkeleton, CreditManagerStub,
};
use brmi_apps::list::{
    brmi_nth_value, rmi_nth_value, ListNode, RemoteListSkeleton, RemoteListStub,
};
use brmi_apps::stress::{run_reactor_stress, StressConfig};
use brmi_apps::translator::{
    brmi_translate_all, rmi_translate_all, DictionaryTranslator, TranslatorSkeleton,
    TranslatorStub, Word,
};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::pool::TcpPool;
use brmi_transport::reactor::{ReactorConfig, ReactorServer};
use brmi_transport::tcp::TcpTransport;

struct ReactorRig {
    reactor: ReactorServer,
}

/// One reactor server with every scenario's root bound by name.
fn rig() -> ReactorRig {
    rig_with(0)
}

/// As [`rig`], dispatching through a worker pool of the given size.
fn rig_with(dispatch_workers: usize) -> ReactorRig {
    let server = RmiServer::new();
    BatchExecutor::install(&server);

    let bank = Bank::new();
    bank.open_account("alice", 1000.0);
    server
        .bind("bank", CreditManagerSkeleton::remote_arc(bank))
        .unwrap();
    server
        .bind(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(&[7, 14, 21, 28, 35])),
        )
        .unwrap();
    server
        .bind(
            "translator",
            TranslatorSkeleton::remote_arc(DictionaryTranslator::english_to_french()),
        )
        .unwrap();

    let reactor = ReactorServer::bind_with(
        "127.0.0.1:0",
        server,
        ReactorConfig {
            reactor_threads: 2,
            dispatch_workers,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    ReactorRig { reactor }
}

/// Clients go through the pooled transport: the pool exercises checkout /
/// checkin on every round trip while the reactor multiplexes the sockets.
fn connect(rig: &ReactorRig) -> Connection {
    Connection::new(Arc::new(
        TcpPool::connect(rig.reactor.local_addr()).unwrap(),
    ))
}

#[test]
fn bank_scenario_over_the_reactor() {
    let rig = rig();
    let conn = connect(&rig);
    let manager = conn.lookup("bank").unwrap();

    let amounts = [100.0, 2000.0, 50.0];
    let brmi = brmi_purchase_session(&conn, &manager, "alice", &amounts).unwrap();
    let rmi =
        rmi_purchase_session(&CreditManagerStub::new(manager.clone()), "alice", &amounts).unwrap();

    // Same observable behaviour: per-purchase outcomes agree (the second
    // purchase overdrafts in both sessions) and only the balances differ
    // by the repeated successful purchases.
    assert_eq!(brmi.purchase_errors, rmi.purchase_errors);
    assert_eq!(
        brmi.purchase_errors,
        vec![None, Some("OverdraftException".to_owned()), None]
    );
    let missing = brmi_purchase_session(&conn, &manager, "nobody", &[10.0]).unwrap();
    assert_eq!(
        missing.credit_line,
        Err("AccountNotFoundException".to_owned())
    );
}

/// The worker-pool dispatch path must be observably identical to inline
/// dispatch for a real application scenario (the blocking-handler and
/// reply-ordering specifics are unit-tested in `brmi_transport::reactor`).
#[test]
fn bank_scenario_over_worker_pool_dispatch() {
    let rig = rig_with(4);
    let conn = connect(&rig);
    let manager = conn.lookup("bank").unwrap();
    let amounts = [100.0, 2000.0, 50.0];
    let brmi = brmi_purchase_session(&conn, &manager, "alice", &amounts).unwrap();
    assert_eq!(
        brmi.purchase_errors,
        vec![None, Some("OverdraftException".to_owned()), None]
    );
}

#[test]
fn list_scenario_over_the_reactor() {
    let rig = rig();
    let conn = connect(&rig);
    let head = conn.lookup("list").unwrap();
    for n in 0..5 {
        assert_eq!(
            brmi_nth_value(&conn, &head, n).unwrap(),
            rmi_nth_value(&RemoteListStub::new(head.clone()), n).unwrap()
        );
    }
    assert_eq!(brmi_nth_value(&conn, &head, 3).unwrap(), 28);
}

#[test]
fn translator_scenario_over_the_reactor() {
    let rig = rig();
    let conn = connect(&rig);
    let translator = conn.lookup("translator").unwrap();
    let words: Vec<Word> = ["hello", "world", "xyzzy", "batch"]
        .iter()
        .map(|w| Word::new(w, "en"))
        .collect();
    let brmi = brmi_translate_all(&conn, &translator, &words).unwrap();
    let rmi = rmi_translate_all(&TranslatorStub::new(translator.clone()), &words).unwrap();
    assert_eq!(brmi, rmi);
    assert_eq!(brmi[0], Ok(Word::new("bonjour", "fr")));
    assert_eq!(brmi[2], Err("UnknownWordException".to_owned()));
}

#[test]
fn thirty_two_concurrent_connections_issue_batches() {
    let rig = rig();
    let addr = rig.reactor.local_addr();
    let handles: Vec<_> = (0..32)
        .map(|worker| {
            std::thread::spawn(move || {
                // One dedicated connection per worker, held for the whole
                // run: 32 sockets live in the reactor simultaneously.
                let conn = Connection::new(Arc::new(TcpTransport::connect(addr).unwrap()));
                let translator = conn.lookup("translator").unwrap();
                let head = conn.lookup("list").unwrap();
                for i in 0..5 {
                    let words = vec![Word::new("hello", "en"), Word::new("latency", "en")];
                    let translated = brmi_translate_all(&conn, &translator, &words).unwrap();
                    assert_eq!(
                        translated[0],
                        Ok(Word::new("bonjour", "fr")),
                        "worker {worker} iteration {i}"
                    );
                    assert_eq!(brmi_nth_value(&conn, &head, 2).unwrap(), 21);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}

/// The scale acceptance test: ≥128 connections established and served at
/// the same time by two reactor threads (no thread-per-connection server
/// could claim this without 128 stacks).
#[test]
fn reactor_sustains_128_concurrent_connections() {
    let rig = rig();
    let addr = rig.reactor.local_addr();
    const CLIENTS: usize = 128;

    // Establish all 128 connections up front and prove each is live with a
    // round trip, while every other connection stays open.
    let conns: Vec<Connection> = (0..CLIENTS)
        .map(|_| Connection::new(Arc::new(TcpTransport::connect(addr).unwrap())))
        .collect();
    for conn in &conns {
        let head = conn.lookup("list").unwrap();
        assert_eq!(brmi_nth_value(conn, &head, 1).unwrap(), 14);
    }
    assert!(
        rig.reactor.active_connections() >= CLIENTS,
        "reactor holds {} connections, expected at least {CLIENTS}",
        rig.reactor.active_connections()
    );

    // Now drive batches over all of them concurrently.
    let handles: Vec<_> = conns
        .into_iter()
        .map(|conn| {
            std::thread::spawn(move || {
                let head = conn.lookup("list").unwrap();
                for _ in 0..3 {
                    assert_eq!(brmi_nth_value(&conn, &head, 4).unwrap(), 35);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}

#[test]
fn pooled_stress_run_completes_with_exact_counts() {
    let config = StressConfig {
        clients: 16,
        batches_per_client: 10,
        calls_per_batch: 25,
        reactor_threads: 2,
    };
    let report = run_reactor_stress(&config).unwrap();
    assert_eq!(report.calls_executed, 16 * 10 * 25);
    assert_eq!(report.round_trips, 16 + 16 * 10);
    assert!(report.bytes_sent > 0 && report.bytes_received > 0);
}
