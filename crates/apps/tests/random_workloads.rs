//! Randomized differential workloads: seeded `rand` workload generators
//! drive the RMI and BRMI clients of each application against separate but
//! identically-initialized servers and assert identical outcomes.

use brmi_apps::bank::{
    brmi_purchase_session, rmi_purchase_session, Bank, CreditManagerSkeleton, CreditManagerStub,
};
use brmi_apps::fileserver::{
    brmi_delete_older_than, brmi_fetch, rmi_delete_older_than, rmi_fetch, DirectorySkeleton,
    DirectoryStub, InMemoryDirectory,
};
use brmi_apps::testkit::AppRig;
use brmi_apps::translator::{
    brmi_translate_all, rmi_translate_all, DictionaryTranslator, TranslatorSkeleton,
    TranslatorStub, Word,
};
use brmi_wire::DateMillis;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn file_rigs(rng: &mut StdRng) -> (AppRig, AppRig, Vec<String>) {
    let count = rng.gen_range(1..12);
    let make = |rng: &mut StdRng| {
        let dir = InMemoryDirectory::new();
        // Sizes/dates must match across the two rigs: derive from index.
        for i in 0..count {
            dir.add_file(
                &format!("f{i}"),
                DateMillis(i as i64 * 500),
                vec![i as u8; (i + 1) * 13],
            );
        }
        let _ = rng;
        AppRig::serve("files", DirectorySkeleton::remote_arc(dir))
    };
    let a = make(rng);
    let b = make(rng);
    let names = (0..count).map(|i| format!("f{i}")).collect();
    (a, b, names)
}

#[test]
fn random_fetch_workloads_agree() {
    let mut rng = StdRng::seed_from_u64(0xBA7C4);
    for _ in 0..20 {
        let (rig_a, rig_b, names) = file_rigs(&mut rng);
        // A random multiset of names, some possibly missing.
        let wanted: Vec<String> = (0..rng.gen_range(0..8))
            .map(|_| {
                if rng.gen_bool(0.15) {
                    "missing".to_owned()
                } else {
                    names[rng.gen_range(0..names.len())].clone()
                }
            })
            .collect();
        let rmi = rmi_fetch(&DirectoryStub::new(rig_a.root.clone()), &wanted);
        let brmi = brmi_fetch(&rig_b.conn, &rig_b.root, &wanted);
        match (rmi, brmi) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a.exception(), b.exception()),
            (a, b) => panic!("divergent outcomes: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn random_delete_cutoffs_agree() {
    let mut rng = StdRng::seed_from_u64(0xDE1E7E);
    for _ in 0..20 {
        let (rig_a, rig_b, _names) = file_rigs(&mut rng);
        let cutoff = DateMillis(rng.gen_range(-100..7000));
        let rmi = rmi_delete_older_than(&DirectoryStub::new(rig_a.root.clone()), cutoff).unwrap();
        let brmi = brmi_delete_older_than(&rig_b.conn, &rig_b.root, cutoff).unwrap();
        assert_eq!(rmi, brmi, "cutoff {cutoff}");
    }
}

#[test]
fn random_purchase_sessions_agree() {
    let mut rng = StdRng::seed_from_u64(0xBA27);
    for _ in 0..25 {
        let limit = rng.gen_range(50.0..500.0);
        let make = || {
            let bank = Bank::new();
            bank.open_account("c", limit);
            AppRig::serve("bank", CreditManagerSkeleton::remote_arc(bank))
        };
        let rig_a = make();
        let rig_b = make();
        let amounts: Vec<f64> = (0..rng.gen_range(0..10))
            .map(|_| rng.gen_range(-20.0..200.0))
            .collect();
        let customer = if rng.gen_bool(0.2) { "ghost" } else { "c" };
        let rmi = rmi_purchase_session(
            &CreditManagerStub::new(rig_a.root.clone()),
            customer,
            &amounts,
        );
        let brmi = brmi_purchase_session(&rig_b.conn, &rig_b.root, customer, &amounts);
        match (rmi, brmi) {
            (Ok(a), Ok(b)) => {
                // The RMI client aborts on lookup failure with an error;
                // the BRMI client reports it through the futures. Compare
                // only when both produced reports.
                assert_eq!(a, b);
            }
            (Err(a), Ok(b)) => {
                // RMI lookup failure vs BRMI policy break: both must blame
                // the same exception.
                assert_eq!(Err::<f64, _>(a.exception().to_owned()), b.credit_line);
            }
            (a, b) => panic!("divergent outcomes: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn random_translation_batches_agree() {
    let mut rng = StdRng::seed_from_u64(0x7A35);
    let vocabulary = DictionaryTranslator::english_to_french().known_words();
    for _ in 0..25 {
        let make = || {
            AppRig::serve(
                "t",
                TranslatorSkeleton::remote_arc(DictionaryTranslator::english_to_french()),
            )
        };
        let rig_a = make();
        let rig_b = make();
        let words: Vec<Word> = (0..rng.gen_range(0..15))
            .map(|_| {
                if rng.gen_bool(0.25) {
                    Word::new("unknowable", "en")
                } else {
                    Word::new(&vocabulary[rng.gen_range(0..vocabulary.len())], "en")
                }
            })
            .collect();
        let rmi = rmi_translate_all(&TranslatorStub::new(rig_a.root.clone()), &words).unwrap();
        let brmi = brmi_translate_all(&rig_b.conn, &rig_b.root, &words).unwrap();
        assert_eq!(rmi, brmi);
    }
}
