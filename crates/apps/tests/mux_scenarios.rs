//! The multiplexed client under the full middleware stack: many
//! concurrent callers — stubs, batches, sessions — sharing **one** socket
//! to a reactor origin, with replies correlated by request id. The wire
//! mechanics (interleaved replies, disconnect semantics, syscall
//! coalescing) are unit-tested in `brmi_transport::mux`; this suite proves
//! the application layer neither knows nor cares that every round trip is
//! multiplexed.

#![cfg(target_os = "linux")]

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton};
use brmi_apps::noop::{brmi_noops, NoopServer, NoopSkeleton};
use brmi_apps::stress::{run_mux_stress, MuxStressConfig};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::mux::MuxClient;
use brmi_transport::reactor::{ReactorConfig, ReactorServer};
use brmi_transport::Transport;

/// The acceptance bar: ≥ 32 concurrent callers, one socket, exact counts.
#[test]
fn thirty_two_concurrent_callers_share_one_socket() {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let noop = NoopServer::new();
    server
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .unwrap();
    let reactor = ReactorServer::bind_with(
        "127.0.0.1:0",
        server,
        ReactorConfig {
            reactor_threads: 2,
            dispatch_workers: 0,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let mux = MuxClient::connect(reactor.local_addr()).unwrap();

    let callers = 32usize;
    let batches = 5usize;
    let calls = 4usize;
    let gate = Arc::new(std::sync::Barrier::new(callers));
    let handles: Vec<_> = (0..callers)
        .map(|_| {
            let mux = Arc::clone(&mux);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let conn = Connection::new(mux as Arc<dyn Transport>);
                let root = conn.lookup("noop").unwrap();
                gate.wait();
                for _ in 0..batches {
                    brmi_noops(&conn, &root, calls).unwrap();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    assert_eq!(noop.calls(), (callers * batches * calls) as u64);
    assert_eq!(
        reactor.active_connections(),
        1,
        "all {callers} callers share one socket"
    );
    assert_eq!(mux.in_flight(), 0);
    // One lookup per caller plus one frame per batch flush.
    assert_eq!(mux.frames_sent(), (callers + callers * batches) as u64);
    assert!(
        mux.write_syscalls() <= mux.frames_sent(),
        "coalescing never costs more syscalls than frames"
    );
}

/// A stateful session scenario (overdrafts, exceptions) behaves over the
/// mux exactly as over any other transport.
#[test]
fn bank_sessions_over_the_mux_client() {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let bank = Bank::new();
    bank.open_account("alice", 1000.0);
    server
        .bind("bank", CreditManagerSkeleton::remote_arc(bank))
        .unwrap();
    let reactor = ReactorServer::bind("127.0.0.1:0", server).unwrap();
    let mux = MuxClient::connect(reactor.local_addr()).unwrap();
    let conn = Connection::new(mux as Arc<dyn Transport>);
    let manager = conn.lookup("bank").unwrap();
    let report = brmi_purchase_session(&conn, &manager, "alice", &[100.0, 2000.0, 50.0]).unwrap();
    assert_eq!(
        report.purchase_errors,
        vec![None, Some("OverdraftException".to_owned()), None]
    );
}

/// The mux-vs-pool stress scenario holds its deterministic shape at the
/// acceptance scale: 32 callers, one socket vs 32, and strictly fewer
/// write syscalls per call than the pool baseline.
#[test]
fn mux_stress_at_acceptance_scale() {
    let config = MuxStressConfig {
        callers: 32,
        bursts_per_caller: 2,
        calls_per_burst: 8,
        reactor_threads: 2,
    };
    let report = run_mux_stress(&config).unwrap();
    assert_eq!(report.calls_executed, 32 * 2 * 8);
    assert_eq!(report.mux_sockets, 1);
    assert_eq!(report.pool_sockets, 32);
    assert_eq!(report.mux_write_syscalls, 1 + 32 * 2);
    assert_eq!(report.pool_round_trips, 1 + 32 * 2 * 8);
    assert!(report.mux_syscalls_per_call() < report.pool_syscalls_per_call() / 4.0);
}
