//! End-to-end trace propagation: one traced client flush rides a
//! [`Frame::Traced`] envelope through the relay tier to the origin, each
//! tier records its span against a shared collector, and the test-side
//! waterfall reassembles the client → relay → origin chain.
//!
//! Everything runs on one `VirtualClock` (spans and the relay's simulated
//! time share a timebase) with in-process transports, so span ids,
//! parents, and timestamps are identical on every run.

use std::sync::Arc;
use std::time::Duration;

use brmi::BatchExecutor;
use brmi_apps::noop::{brmi_noops, NoopServer, NoopSkeleton};
use brmi_obs::{SpanRecord, TraceCollector, Tracer};
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::clock::{Clock, VirtualClock};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::relay::{BatchRelay, RelayPolicy};
use brmi_transport::Transport;

const CALLS_PER_BATCH: usize = 3;

/// Builds the three-tier rig, runs one traced flush of
/// [`CALLS_PER_BATCH`] no-ops, and returns everything recorded.
fn run_traced_flush(trace_client: bool) -> (Arc<TraceCollector>, Vec<SpanRecord>) {
    let collector = TraceCollector::new();
    let clock = VirtualClock::new();
    let tracer = Tracer::new(clock.clone(), collector.clone());

    // Origin tier: RMI server with batching, recording `origin.execute`.
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let noop = NoopServer::new();
    origin
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .expect("fresh origin bind");
    origin.set_tracer(tracer.clone());

    // Relay tier: coalescing budget of exactly one batch, so the flush
    // ships the moment the client's batch arrives — no clock advance or
    // companion traffic needed.
    let upstream: Arc<dyn Transport> = Arc::new(InProcTransport::new(origin));
    let relay = BatchRelay::with_time_source(
        upstream,
        RelayPolicy::builder()
            .max_coalesced_calls(CALLS_PER_BATCH)
            .max_delay(Duration::from_secs(30))
            .build(),
        clock.clone(),
    );
    relay.set_tracer(tracer.clone());

    // Client tier: a plain connection, optionally traced.
    let mut conn = Connection::new(Arc::new(InProcTransport::new(relay.clone())));
    if trace_client {
        conn = conn.with_tracer(tracer.clone());
    }
    let root: RemoteRef = conn.lookup("noop").expect("lookup");
    brmi_noops(&conn, &root, CALLS_PER_BATCH).expect("traced flush");

    assert_eq!(noop.calls(), CALLS_PER_BATCH as u64);
    // The clock only moves if something charged simulated time; nothing
    // does here, so every span timestamp is exactly zero.
    assert_eq!(clock.elapsed(), Duration::ZERO);
    let spans = collector.spans();
    (collector, spans)
}

#[test]
fn one_batch_produces_a_client_relay_origin_waterfall() {
    let (collector, spans) = run_traced_flush(true);

    // Spans arrive as the reply unwinds: relay closes its span at flush,
    // the origin during execution, the client last.
    assert_eq!(spans.len(), 3);

    let ids = collector.trace_ids();
    assert_eq!(ids.len(), 1, "one flush is one trace");
    let rows = collector.waterfall(ids[0]);
    let shape: Vec<(usize, &str)> = rows.iter().map(|row| (row.depth, row.span.name)).collect();
    assert_eq!(
        shape,
        vec![
            (0, "client.flush"),
            (1, "relay.coalesce"),
            (2, "origin.execute"),
        ]
    );

    // The causal chain is carried on the wire, not assumed: each tier's
    // parent is the previous tier's span id.
    assert_eq!(rows[0].span.parent, 0);
    assert_eq!(rows[1].span.parent, rows[0].span.span_id);
    assert_eq!(rows[2].span.parent, rows[1].span.span_id);
    assert_eq!(rows[0].span.trace_id, rows[2].span.trace_id);

    // One shared id sequence, minted in tier order as the frame travels.
    assert_eq!(rows[0].span.span_id, 1);
    assert_eq!(rows[1].span.span_id, 2);
    assert_eq!(rows[2].span.span_id, 3);

    let rendered = collector.render_waterfall(ids[0]);
    assert!(rendered.contains("client.flush"));
    assert!(rendered.contains("  relay.coalesce"));
    assert!(rendered.contains("    origin.execute"));
}

#[test]
fn traced_runs_are_identical_span_for_span() {
    let (_, first) = run_traced_flush(true);
    let (_, second) = run_traced_flush(true);
    assert_eq!(first, second, "virtual-time traces must be byte-stable");
}

#[test]
fn untraced_client_records_nothing_through_traced_tiers() {
    // Relay and origin both hold tracers, but without a client envelope
    // there is no trace to join — the wire stays envelope-free and the
    // collector stays empty.
    let (_, spans) = run_traced_flush(false);
    assert!(spans.is_empty(), "unexpected spans: {spans:?}");
}
