//! Client → edge → origin scenarios: application workloads executed
//! through a [`BatchRelay`] must be observably identical to direct
//! execution, and faults on the edge↔origin hop must surface as per-client
//! batch errors with at-most-once execution. The bank scenario's TCP edge
//! runs on the epoll reactor with worker-pool dispatch (the relay's
//! blocking flush-wait parks on dispatch workers, not event-loop threads);
//! the disconnect scenario keeps a thread-per-connection `TcpServer` edge,
//! which remains a supported small-deployment configuration.

#![cfg(target_os = "linux")]

use std::sync::{Arc, Barrier};
use std::time::Duration;

use brmi::BatchExecutor;
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton, SessionReport};
use brmi_apps::list::{brmi_nth_value, ListNode, RemoteListSkeleton};
use brmi_apps::noop::{brmi_noops, NoopServer, NoopSkeleton};
use brmi_apps::testkit::AppRig;
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::fault::{FaultPlan, FaultyTransport};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::pool::TcpPool;
use brmi_transport::reactor::{ReactorConfig, ReactorServer};
use brmi_transport::relay::{BatchRelay, RelayPolicy};
use brmi_transport::tcp::TcpServer;
use brmi_transport::{clock::SleepClock, Transport};
use brmi_wire::RemoteErrorKind;

/// Budgeted relay policy triggering on `batches × calls` pending calls.
fn policy(batches: usize, calls: usize) -> RelayPolicy {
    RelayPolicy::builder()
        .max_coalesced_calls(batches * calls)
        .max_delay(Duration::from_millis(50))
        .build()
}

#[test]
fn bank_sessions_through_tcp_relay_match_direct_execution() {
    // Direct reference run: the same programs against a plain in-process
    // rig, sequentially.
    let amounts: Vec<Vec<f64>> = vec![
        vec![10.0, 2000.0, 5.0], // one overdraft mid-session
        vec![-3.0, 40.0],        // one invalid amount
        vec![25.0, 25.0, 25.0, 25.0],
        vec![],
    ];
    let direct_bank = Bank::new();
    let direct_rig = AppRig::serve(
        "bank",
        CreditManagerSkeleton::remote_arc(direct_bank.clone()),
    );
    let mut direct_reports: Vec<SessionReport> = Vec::new();
    for (i, session) in amounts.iter().enumerate() {
        let customer = format!("cust{i}");
        direct_bank.open_account(&customer, 100.0);
        direct_reports.push(
            brmi_purchase_session(&direct_rig.conn, &direct_rig.root, &customer, session).unwrap(),
        );
    }

    // Relayed run: reactor origin, reactor-with-worker-pool edge, one
    // concurrent client per program, all waves coalesced.
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let relay_bank = Bank::new();
    origin
        .bind(
            "bank",
            CreditManagerSkeleton::remote_arc(relay_bank.clone()),
        )
        .unwrap();
    let reactor = ReactorServer::bind_with(
        "127.0.0.1:0",
        origin,
        ReactorConfig {
            reactor_threads: 2,
            dispatch_workers: 0,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let upstream = Arc::new(TcpPool::connect(reactor.local_addr()).unwrap());
    let upstream_stats = upstream.stats();
    // Sessions have differing call counts, so coalescing groups form
    // opportunistically under a short delay — equivalence must hold for
    // any grouping.
    let relay = BatchRelay::new(
        Arc::clone(&upstream) as Arc<dyn Transport>,
        RelayPolicy::builder()
            .max_coalesced_calls(8)
            .max_delay(Duration::from_millis(2))
            .build(),
    );
    // The edge reactor's worker pool absorbs the relay handler's blocking
    // flush-waits — one blocked batch per concurrent client.
    let mut edge = ReactorServer::bind_with(
        "127.0.0.1:0",
        relay.clone(),
        ReactorConfig {
            reactor_threads: 2,
            dispatch_workers: amounts.len(),
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let pool = Arc::new(TcpPool::connect(edge.local_addr()).unwrap());

    for i in 0..amounts.len() {
        relay_bank.open_account(&format!("cust{i}"), 100.0);
    }
    let gate = Arc::new(Barrier::new(amounts.len()));
    let handles: Vec<_> = amounts
        .iter()
        .enumerate()
        .map(|(i, session)| {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&gate);
            let session = session.clone();
            std::thread::spawn(move || {
                let conn = Connection::new(pool);
                let root = conn.lookup("bank").unwrap();
                gate.wait();
                brmi_purchase_session(&conn, &root, &format!("cust{i}"), &session).unwrap()
            })
        })
        .collect();
    let relayed_reports: Vec<SessionReport> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(relayed_reports, direct_reports);
    for i in 0..amounts.len() {
        let customer = format!("cust{i}");
        assert_eq!(
            relay_bank.balance_of(&customer),
            direct_bank.balance_of(&customer),
            "server state must match for {customer}"
        );
    }
    assert!(
        upstream_stats.requests() > 0,
        "the origin hop was exercised"
    );
    edge.shutdown();
    relay.shutdown();
}

#[test]
fn list_traversals_through_relay_match_direct_including_exceptions() {
    let values = [7, 14, 21];
    let direct_rig = AppRig::serve(
        "list",
        RemoteListSkeleton::remote_arc(ListNode::chain(&values)),
    );

    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    origin
        .bind(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(&values)),
        )
        .unwrap();
    let upstream = Arc::new(InProcTransport::new(origin));
    let relay = BatchRelay::new(
        upstream,
        RelayPolicy::builder()
            .max_coalesced_calls(6)
            .max_delay(Duration::from_millis(1))
            .build(),
    );
    let conn = Connection::new(Arc::new(InProcTransport::new(relay.clone())));
    let root = conn.lookup("list").unwrap();

    // Depths 0..2 succeed; 3.. re-throw EndOfListException — the abort
    // cursor must land on the same hop relayed as direct.
    for n in 0..6 {
        let direct = brmi_nth_value(&direct_rig.conn, &direct_rig.root, n);
        let relayed = brmi_nth_value(&conn, &root, n);
        match (direct, relayed) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "depth {n}"),
            (Err(a), Err(b)) => {
                assert_eq!(a.exception(), b.exception(), "depth {n}");
                assert_eq!(a.kind(), b.kind(), "depth {n}");
            }
            (direct, relayed) => panic!("depth {n} diverged: {direct:?} vs {relayed:?}"),
        }
    }
    relay.shutdown();
}

#[test]
fn upstream_drop_fails_each_member_batch_without_duplicate_execution() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let noop = NoopServer::new();
    origin
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .unwrap();
    // Forwarded lookups: 4 requests; then super-batches. Fail the 6th
    // upstream request — the second wave — and everything after recovers.
    let upstream = FaultyTransport::new(InProcTransport::new(origin), FaultPlan::OnNth(6));
    let relay = BatchRelay::new(Arc::clone(&upstream) as Arc<dyn Transport>, policy(4, 5));
    let client_transport = Arc::new(InProcTransport::new(relay.clone()));

    let gate = Arc::new(Barrier::new(4));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let transport = Arc::clone(&client_transport);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let conn = Connection::new(transport);
                let root = conn.lookup("noop").unwrap();
                gate.wait();
                let mut outcomes = Vec::new();
                for _ in 0..3 {
                    outcomes.push(brmi_noops(&conn, &root, 5));
                }
                outcomes
            })
        })
        .collect();
    let per_client: Vec<Vec<Result<(), brmi_wire::RemoteError>>> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();

    let mut ok = 0u64;
    let mut failed = 0u64;
    for outcomes in &per_client {
        for outcome in outcomes {
            match outcome {
                Ok(()) => ok += 1,
                Err(err) => {
                    assert_eq!(
                        err.kind(),
                        RemoteErrorKind::Transport,
                        "mid-super-batch drops surface as per-client transport errors"
                    );
                    failed += 1;
                }
            }
        }
    }
    // The dropped wave carried one batch from every client.
    assert_eq!(failed, 4, "exactly the dropped wave's batches failed");
    assert_eq!(ok, 8);
    // At-most-once: the dropped wave never reached the origin and nothing
    // was replayed — executed calls are exactly the successful batches'.
    assert_eq!(noop.calls(), ok * 5);
    assert_eq!(upstream.injected(), 1);
    relay.shutdown();
}

#[test]
fn mid_run_origin_disconnect_over_tcp_preserves_at_most_once() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let noop = NoopServer::new();
    origin
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .unwrap();
    let mut origin_server = TcpServer::bind("127.0.0.1:0", origin).unwrap();
    let upstream = Arc::new(TcpPool::connect(origin_server.local_addr()).unwrap());
    let relay = BatchRelay::new(Arc::clone(&upstream) as Arc<dyn Transport>, policy(2, 4));
    // Deliberately a thread-per-connection edge: the relay behind a
    // TcpServer stays a supported small-deployment configuration (the
    // reactor-with-worker-pool edge is covered by the bank scenario above
    // and the relay stress workload).
    let mut edge = TcpServer::bind("127.0.0.1:0", relay.clone()).unwrap();
    let pool = Arc::new(TcpPool::connect(edge.local_addr()).unwrap());

    let calls_per_batch = 4usize;
    let gate = Arc::new(Barrier::new(2 + 1));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let conn = Connection::new(pool);
                let root = conn.lookup("noop").unwrap();
                gate.wait();
                let mut successes = 0u64;
                let mut failures = 0u64;
                // Stream batches until the disconnect is observed (bounded
                // so a broken test cannot spin forever).
                for _ in 0..20_000 {
                    match brmi_noops(&conn, &root, calls_per_batch) {
                        Ok(()) => successes += 1,
                        Err(_) => {
                            failures += 1;
                            break;
                        }
                    }
                }
                (successes, failures)
            })
        })
        .collect();

    gate.wait();
    // Kill the origin mid-run: some super-batch dies on the wire.
    std::thread::sleep(Duration::from_millis(3));
    origin_server.shutdown();

    let mut successes = 0u64;
    let mut failures = 0u64;
    for handle in handles {
        let (ok, failed) = handle.join().unwrap();
        successes += ok;
        failures += failed;
    }
    assert!(failures > 0, "the disconnect must surface to clients");

    // At-most-once under disconnection: nothing is ever replayed, so the
    // origin executed at least every acknowledged batch, at most also the
    // in-flight ones whose replies were lost — and each inner batch ran
    // exactly once (whole multiples of the batch size, bounded by the
    // total attempted).
    let executed = noop.calls();
    assert!(executed >= successes * calls_per_batch as u64);
    assert!(executed <= (successes + failures) * calls_per_batch as u64);
    assert_eq!(executed % calls_per_batch as u64, 0);
    edge.shutdown();
    relay.shutdown();
}

#[test]
fn delayed_upstream_changes_timing_not_results() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let noop = NoopServer::new();
    origin
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .unwrap();
    let upstream = FaultyTransport::with_delay(
        InProcTransport::new(origin),
        FaultPlan::None,
        SleepClock::new(),
        Duration::from_millis(2),
    );
    let relay = BatchRelay::new(Arc::clone(&upstream) as Arc<dyn Transport>, policy(3, 2));
    let client_transport = Arc::new(InProcTransport::new(relay.clone()));

    let gate = Arc::new(Barrier::new(3));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let transport = Arc::clone(&client_transport);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let conn = Connection::new(transport);
                let root = conn.lookup("noop").unwrap();
                gate.wait();
                for _ in 0..4 {
                    brmi_noops(&conn, &root, 2).unwrap();
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(noop.calls(), 3 * 4 * 2, "slow links lose nothing");
    relay.shutdown();
}
