//! End-to-end scenarios for the read-caching tier: the bank and list
//! services running through a [`BatchFetcher`], asserting that cached
//! reads are invisible semantically (every observation matches a direct
//! rig) and visible economically (the origin executes fewer reads).

use std::sync::Arc;
use std::time::Duration;

use brmi::policy::AbortPolicy;
use brmi::{Batch, BatchExecutor};
use brmi_apps::bank::{
    brmi_purchase_session, BCreditCard, Bank, CreditCardSkeleton, CreditManagerSkeleton,
    CreditManagerStub,
};
use brmi_apps::list::{brmi_nth_value, ListNode, RemoteListSkeleton};
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::fetcher::BatchFetcher;
use brmi_transport::inproc::InProcTransport;
use brmi_transport::relay::ReadCachePolicy;
use brmi_transport::RequestHandler;
use brmi_wire::{MethodRegistry, RemoteError};

/// A bank rig whose client path runs through a [`BatchFetcher`].
struct FetchedBank {
    bank: Arc<Bank>,
    fetcher: Arc<BatchFetcher>,
    conn: Connection,
    root: RemoteRef,
    executor: Arc<brmi::BatchExecutor>,
}

fn fetched_bank(policy: ReadCachePolicy) -> FetchedBank {
    let origin = RmiServer::new();
    let executor = BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    let registry = Arc::new(MethodRegistry::of(&[
        CreditCardSkeleton::INTERFACE_META,
        CreditManagerSkeleton::INTERFACE_META,
    ]));
    let fetcher = BatchFetcher::new(origin as Arc<dyn RequestHandler>, registry, policy);
    let conn = Connection::new(Arc::new(InProcTransport::new(
        Arc::clone(&fetcher) as Arc<dyn RequestHandler>
    )));
    let root = conn.lookup("bank").expect("lookup through fetcher");
    FetchedBank {
        bank,
        fetcher,
        conn,
        root,
        executor,
    }
}

fn generous_cache() -> ReadCachePolicy {
    ReadCachePolicy {
        ttl: Duration::from_secs(300),
        capacity: 64,
    }
}

/// One cacheable read batch: the account's balance.
fn read_balance(conn: &Connection, account: &RemoteRef) -> Result<f64, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let balance = BCreditCard::new(&batch, account).get_balance();
    batch.flush()?;
    balance.get()
}

#[test]
fn purchase_sessions_through_the_fetcher_match_a_direct_rig() {
    let fetched = fetched_bank(generous_cache());
    fetched.bank.open_account("alice", 1000.0);

    let direct_bank = Bank::new();
    direct_bank.open_account("alice", 1000.0);
    let direct_rig = brmi_apps::testkit::AppRig::serve(
        "bank",
        CreditManagerSkeleton::remote_arc(direct_bank.clone()),
    );

    // Mixed sessions (lookup + writes + read) are non-cacheable batches,
    // so they flow through untouched — but their writes must invalidate.
    let amounts = [123.0, 456.0, 2000.0, 10.0]; // one overdraft
    let via_fetcher =
        brmi_purchase_session(&fetched.conn, &fetched.root, "alice", &amounts).unwrap();
    let via_direct =
        brmi_purchase_session(&direct_rig.conn, &direct_rig.root, "alice", &amounts).unwrap();
    assert_eq!(via_fetcher, via_direct);
    assert_eq!(
        fetched.bank.balance_of("alice"),
        direct_bank.balance_of("alice")
    );
}

#[test]
fn repeated_balance_reads_cost_the_origin_one_execution() {
    let fetched = fetched_bank(generous_cache());
    fetched.bank.open_account("alice", 1000.0);
    let manager = CreditManagerStub::new(fetched.root.clone());
    let account = manager
        .find_credit_account("alice".into())
        .unwrap()
        .remote_ref()
        .clone();

    for _ in 0..10 {
        assert_eq!(read_balance(&fetched.conn, &account).unwrap(), 0.0);
    }
    assert_eq!(
        fetched.executor.stats().calls_replayed,
        1,
        "ten client reads, one origin execution"
    );
    let stats = fetched.fetcher.stats();
    assert_eq!(stats.misses(), 1);
    assert_eq!(stats.hits(), 9);
}

#[test]
fn a_write_invalidates_and_the_next_read_is_fresh() {
    let fetched = fetched_bank(generous_cache());
    fetched.bank.open_account("alice", 1000.0);
    let manager = CreditManagerStub::new(fetched.root.clone());
    let account_stub = manager.find_credit_account("alice".into()).unwrap();
    let account = account_stub.remote_ref().clone();

    assert_eq!(read_balance(&fetched.conn, &account).unwrap(), 0.0);
    assert_eq!(read_balance(&fetched.conn, &account).unwrap(), 0.0); // cached

    // A write batch through the fetcher: non-cacheable, bumps the
    // account's epoch before it reaches the origin.
    let batch = Batch::new(fetched.conn.clone(), AbortPolicy);
    let purchase = BCreditCard::new(&batch, &account).make_purchase(250.0);
    batch.flush().unwrap();
    purchase.get().unwrap();

    assert_eq!(
        read_balance(&fetched.conn, &account).unwrap(),
        250.0,
        "read-your-write through the cache"
    );
    let stats = fetched.fetcher.stats();
    assert_eq!(stats.misses(), 2, "initial read + post-write re-probe");
    assert_eq!(stats.hits(), 1);
}

#[test]
fn plain_rmi_writes_also_invalidate_cached_batch_reads() {
    let fetched = fetched_bank(generous_cache());
    fetched.bank.open_account("alice", 1000.0);
    let manager = CreditManagerStub::new(fetched.root.clone());
    let account_stub = manager.find_credit_account("alice".into()).unwrap();
    let account = account_stub.remote_ref().clone();

    assert_eq!(read_balance(&fetched.conn, &account).unwrap(), 0.0);
    // The write travels as a plain RMI `Frame::Call`, not a batch.
    account_stub.make_purchase(99.0).unwrap();
    assert_eq!(read_balance(&fetched.conn, &account).unwrap(), 99.0);
}

#[test]
fn explicit_invalidation_forces_a_re_probe() {
    let fetched = fetched_bank(generous_cache());
    fetched.bank.open_account("alice", 1000.0);
    let manager = CreditManagerStub::new(fetched.root.clone());
    let account = manager
        .find_credit_account("alice".into())
        .unwrap()
        .remote_ref()
        .clone();

    assert_eq!(read_balance(&fetched.conn, &account).unwrap(), 0.0);
    // Server-side mutation the fetcher cannot see: explicit invalidation
    // is the escape hatch.
    fetched.bank.open_account("alice", 500.0); // replaces the account object
    fetched.fetcher.invalidate_all();
    let fresh = manager
        .find_credit_account("alice".into())
        .unwrap()
        .remote_ref()
        .clone();
    assert_eq!(read_balance(&fetched.conn, &fresh).unwrap(), 0.0);
    assert!(fetched.fetcher.stats().invalidations() >= 1);
}

#[test]
fn aggregate_directory_reads_stay_fresh_across_aliased_deletes() {
    use brmi_apps::fileserver::{
        BDirectory, DirectorySkeleton, DirectoryStub, InMemoryDirectory, RemoteFileSkeleton,
    };

    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let dir = InMemoryDirectory::new();
    dir.populate(3, 8);
    origin
        .bind("files", DirectorySkeleton::remote_arc(dir))
        .expect("fresh bind");
    let registry = Arc::new(MethodRegistry::of(&[
        DirectorySkeleton::INTERFACE_META,
        RemoteFileSkeleton::INTERFACE_META,
    ]));
    let fetcher = BatchFetcher::new(
        origin as Arc<dyn RequestHandler>,
        registry,
        generous_cache(),
    );
    let conn = Connection::new(Arc::new(InProcTransport::new(
        Arc::clone(&fetcher) as Arc<dyn RequestHandler>
    )));
    let root = conn.lookup("files").unwrap();

    let count = |conn: &Connection, root: &RemoteRef| {
        let batch = Batch::new(conn.clone(), AbortPolicy);
        let n = BDirectory::new(&batch, root).file_count();
        batch.flush().unwrap();
        n.get().unwrap()
    };
    assert_eq!(count(&conn, &root), 3);
    assert_eq!(count(&conn, &root), 3);

    // Deleting through the *file* object also mutates the parent
    // directory's entry list — a write the directory's own epoch never
    // sees. `file_count` therefore must not be `#[read_only]`: were it
    // cached, the count would stay 3 until the TTL lapsed.
    let stub = DirectoryStub::new(root.clone());
    stub.get_file("file0".into()).unwrap().delete().unwrap();
    assert_eq!(
        count(&conn, &root),
        2,
        "aggregate read reflects the aliased delete immediately"
    );
    assert_eq!(
        fetcher.stats().cacheable_batches(),
        0,
        "aggregate directory reads bypass the cache entirely"
    );
}

#[test]
fn list_traversals_stay_correct_and_remote_returning_reads_bypass_the_cache() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    origin
        .bind(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(&[10, 20, 30])),
        )
        .expect("fresh bind");
    let registry = Arc::new(MethodRegistry::of(&[RemoteListSkeleton::INTERFACE_META]));
    let fetcher = BatchFetcher::new(
        origin as Arc<dyn RequestHandler>,
        registry,
        generous_cache(),
    );
    let conn = Connection::new(Arc::new(InProcTransport::new(
        Arc::clone(&fetcher) as Arc<dyn RequestHandler>
    )));
    let root = conn.lookup("list").unwrap();

    // `next()` is read-only but remote-returning, so traversal batches are
    // forwarded verbatim; values and the end-of-list exception must match
    // the direct semantics exactly.
    for (depth, expected) in [(0, Ok(10)), (1, Ok(20)), (2, Ok(30))] {
        assert_eq!(brmi_nth_value(&conn, &root, depth), expected);
    }
    let err = brmi_nth_value(&conn, &root, 5).unwrap_err();
    assert_eq!(err.exception(), "EndOfListException");
    assert_eq!(
        fetcher.stats().cacheable_batches(),
        1,
        "only the depth-0 batch (a lone get_value) is cacheable; every \
         batch containing a remote-returning next() passes through"
    );
}
