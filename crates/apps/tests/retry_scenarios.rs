//! End-to-end keyed retry over real TCP: the origin process (its
//! `RmiServer`, executor, bank state and reply cache) stays up while its
//! TCP listener dies and comes back — the worst realistic outage for a
//! pooled client. A keyed connection over [`TcpPool`] rides through the
//! restart: stale idle sockets are discarded, keyed frames are re-sent,
//! and the origin charges every purchase exactly once.

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::pool::TcpPool;
use brmi_transport::retry::RetryPolicy;
use brmi_transport::tcp::TcpServer;
use brmi_transport::Transport;

#[test]
fn keyed_sessions_ride_through_a_listener_restart() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    bank.open_account("carol", 1000.0);

    let mut tcp = TcpServer::bind("127.0.0.1:0", origin.clone()).expect("bind");
    let addr = tcp.local_addr();
    let pool = Arc::new(
        TcpPool::connect(addr)
            .expect("dial")
            .with_retry_policy(RetryPolicy::immediate(8)),
    );
    let conn = Connection::new_keyed(Arc::clone(&pool) as Arc<dyn Transport>);
    let root = conn.lookup("bank").expect("lookup");

    let first = brmi_purchase_session(&conn, &root, "carol", &[100.0, 50.0]).expect("session 1");
    assert_eq!(first.credit_line, Ok(850.0));

    // Kill only the listener; the origin (and its reply cache) lives on.
    tcp.shutdown();
    let _tcp = TcpServer::bind(addr, origin.clone()).expect("rebind on the same port");

    // The pool's idle sockets are now dead. Keyed traffic redials and
    // re-sends; nothing surfaces to the application.
    let second = brmi_purchase_session(&conn, &root, "carol", &[25.0]).expect("session 2");
    assert_eq!(second.credit_line, Ok(825.0));
    assert_eq!(
        bank.balance_of("carol"),
        Some(175.0),
        "every purchase charged exactly once across the restart"
    );
    assert_eq!(
        origin.reply_cache().replays(),
        0,
        "a clean re-send after reconnect executes fresh — no duplicate reached the origin"
    );
}
