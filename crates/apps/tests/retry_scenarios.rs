//! End-to-end keyed retry over real TCP: the origin process (its
//! `RmiServer`, executor, bank state and reply cache) stays up while its
//! TCP listener dies and comes back — the worst realistic outage for a
//! pooled client. A keyed connection over [`TcpPool`] rides through the
//! restart: stale idle sockets are discarded, keyed frames are re-sent,
//! and the origin charges every purchase exactly once.

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::mux::MuxClient;
use brmi_transport::pool::TcpPool;
use brmi_transport::reactor::ReactorServer;
use brmi_transport::retry::{RetryPolicy, RetryTransport};
use brmi_transport::tcp::TcpServer;
use brmi_transport::Transport;
use brmi_wire::RemoteError;

#[test]
fn keyed_sessions_ride_through_a_listener_restart() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    bank.open_account("carol", 1000.0);

    let mut tcp = TcpServer::bind("127.0.0.1:0", origin.clone()).expect("bind");
    let addr = tcp.local_addr();
    let pool = Arc::new(
        TcpPool::connect(addr)
            .expect("dial")
            .with_retry_policy(RetryPolicy::immediate(8)),
    );
    let conn = Connection::new_keyed(Arc::clone(&pool) as Arc<dyn Transport>);
    let root = conn.lookup("bank").expect("lookup");

    let first = brmi_purchase_session(&conn, &root, "carol", &[100.0, 50.0]).expect("session 1");
    assert_eq!(first.credit_line, Ok(850.0));

    // Kill only the listener; the origin (and its reply cache) lives on.
    tcp.shutdown();
    let _tcp = TcpServer::bind(addr, origin.clone()).expect("rebind on the same port");

    // The pool's idle sockets are now dead. Keyed traffic redials and
    // re-sends; nothing surfaces to the application.
    let second = brmi_purchase_session(&conn, &root, "carol", &[25.0]).expect("session 2");
    assert_eq!(second.credit_line, Ok(825.0));
    assert_eq!(
        bank.balance_of("carol"),
        Some(175.0),
        "every purchase charged exactly once across the restart"
    );
    assert_eq!(
        origin.reply_cache().replays(),
        0,
        "a clean re-send after reconnect executes fresh — no duplicate reached the origin"
    );
}

/// Dials a [`MuxClient`], waiting out the listener-down window: during a
/// reactor restart the port refuses connections until the rebind lands,
/// and a real client keeps dialing rather than giving up inside the gap.
fn patient_mux_dial(addr: std::net::SocketAddr) -> Result<Arc<dyn Transport>, RemoteError> {
    let mut last = None;
    for _ in 0..400 {
        match MuxClient::connect(addr) {
            Ok(client) => return Ok(client as Arc<dyn Transport>),
            Err(err) => {
                last = Some(err);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
    }
    Err(last.unwrap_or_else(|| RemoteError::transport("mux dial never attempted")))
}

/// The reactor tier's worst outage: the epoll listener is torn down
/// abortively — every multiplexed socket drops with calls in flight —
/// and a replacement binds the *same* port. Keyed traffic from several
/// concurrent logical clients, each a [`MuxClient`] behind a
/// [`RetryTransport`], rides through: in-flight calls fail over to the
/// reborn listener and the origin charges every purchase exactly once.
#[test]
fn mux_clients_survive_an_abortive_reactor_rebind_on_the_same_port() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");

    const WORKERS: usize = 3;
    const SESSIONS: usize = 4;
    for worker in 0..WORKERS {
        bank.open_account(&format!("acct-{worker}"), 1000.0);
    }

    let mut reactor = ReactorServer::bind("127.0.0.1:0", origin.clone()).expect("bind");
    let addr = reactor.local_addr();

    let start = Arc::new(std::sync::Barrier::new(WORKERS + 1));
    let workers: Vec<_> = (0..WORKERS)
        .map(|worker| {
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                let retry =
                    RetryTransport::new(move || patient_mux_dial(addr), RetryPolicy::immediate(16));
                let conn = Connection::new_keyed(retry as Arc<dyn Transport>);
                let root = conn.lookup("bank").expect("lookup");
                let account = format!("acct-{worker}");
                start.wait();
                for session in 0..SESSIONS {
                    brmi_purchase_session(&conn, &root, &account, &[10.0, 5.0])
                        .unwrap_or_else(|err| panic!("{account} session {session}: {err}"));
                }
            })
        })
        .collect();

    // Drop the listener abortively while the workers are mid-traffic,
    // then rebind the very same port.
    start.wait();
    reactor.shutdown();
    let reactor2 = ReactorServer::bind(addr, origin.clone()).expect("rebind on the same port");
    assert_eq!(reactor2.local_addr(), addr);

    for worker in workers {
        worker.join().expect("worker panicked");
    }
    for worker in 0..WORKERS {
        assert_eq!(
            bank.balance_of(&format!("acct-{worker}")),
            Some((SESSIONS as f64) * 15.0),
            "acct-{worker}: every purchase charged exactly once across the rebind"
        );
    }
}
