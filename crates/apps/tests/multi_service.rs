//! Cross-application integration: every case-study service on ONE server,
//! reached over real TCP by concurrent clients mixing RMI and BRMI.

use std::sync::Arc;

use brmi::policy::AbortPolicy;
use brmi::{Batch, BatchExecutor};
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton};
use brmi_apps::fileserver::{brmi_listing, DirectorySkeleton, InMemoryDirectory};
use brmi_apps::list::{brmi_nth_value, ListNode, RemoteListSkeleton};
use brmi_apps::noop::{BNoop, NoopServer, NoopSkeleton};
use brmi_apps::simulation::{brmi_run, SimulationServer, SimulationSkeleton};
use brmi_apps::translator::{brmi_translate_all, DictionaryTranslator, TranslatorSkeleton, Word};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::tcp::{TcpServer, TcpTransport};

fn full_server() -> (Arc<RmiServer>, TcpServer) {
    let server = RmiServer::new();
    BatchExecutor::install(&server);

    let dir = InMemoryDirectory::new();
    dir.populate(5, 100);
    server
        .bind("files", DirectorySkeleton::remote_arc(dir))
        .unwrap();

    let bank = Bank::new();
    bank.open_account("alice", 500.0);
    server
        .bind("bank", CreditManagerSkeleton::remote_arc(bank))
        .unwrap();

    server
        .bind(
            "translator",
            TranslatorSkeleton::remote_arc(DictionaryTranslator::english_to_french()),
        )
        .unwrap();
    server
        .bind(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(&[1, 2, 3, 4, 5])),
        )
        .unwrap();
    server
        .bind("noop", NoopSkeleton::remote_arc(NoopServer::new()))
        .unwrap();
    server
        .bind(
            "simulation",
            SimulationSkeleton::remote_arc(SimulationServer::new()),
        )
        .unwrap();

    let tcp = TcpServer::bind("127.0.0.1:0", server.clone()).unwrap();
    (server, tcp)
}

#[test]
fn all_services_coexist_on_one_server() {
    let (server, tcp) = full_server();
    let conn = Connection::new(Arc::new(TcpTransport::connect(tcp.local_addr()).unwrap()));

    assert_eq!(
        conn.registry_names().unwrap(),
        vec!["bank", "files", "list", "noop", "simulation", "translator"]
    );

    let files = conn.lookup("files").unwrap();
    assert_eq!(brmi_listing(&conn, &files).unwrap().len(), 5);

    let list = conn.lookup("list").unwrap();
    assert_eq!(brmi_nth_value(&conn, &list, 4).unwrap(), 5);

    let bank = conn.lookup("bank").unwrap();
    let report = brmi_purchase_session(&conn, &bank, "alice", &[10.0]).unwrap();
    assert_eq!(report.purchase_errors, vec![None]);

    let translator = conn.lookup("translator").unwrap();
    let out = brmi_translate_all(&conn, &translator, &[Word::new("cat", "en")]).unwrap();
    assert_eq!(out[0], Ok(Word::new("chat", "fr")));

    let simulation = conn.lookup("simulation").unwrap();
    assert_eq!(brmi_run(&conn, &simulation, 3, 2).unwrap(), 6.0);
    assert_eq!(server.loopback_calls(), 0);
}

#[test]
fn one_batch_can_span_services() {
    // A single batch mixing calls on the noop service and the list — the
    // paper's "any number of remote calls on many remote objects".
    let (_server, tcp) = full_server();
    let conn = Connection::new(Arc::new(TcpTransport::connect(tcp.local_addr()).unwrap()));
    let noop_ref = conn.lookup("noop").unwrap();
    let list_ref = conn.lookup("list").unwrap();

    let batch = Batch::new(conn.clone(), AbortPolicy);
    let noop = BNoop::new(&batch, &noop_ref);
    let list = brmi_apps::list::BRemoteList::new(&batch, &list_ref);
    let ping = noop.noop();
    let head = list.get_value();
    let second = list.next().get_value();
    batch.flush().unwrap();
    ping.get().unwrap();
    assert_eq!(head.get().unwrap(), 1);
    assert_eq!(second.get().unwrap(), 2);
}

#[test]
fn concurrent_mixed_clients_over_tcp() {
    let (_server, tcp) = full_server();
    let addr = tcp.local_addr();
    let handles: Vec<_> = (0..6)
        .map(|worker| {
            std::thread::spawn(move || {
                let conn = Connection::new(Arc::new(TcpTransport::connect(addr).unwrap()));
                for round in 0..10 {
                    match (worker + round) % 3 {
                        0 => {
                            let files = conn.lookup("files").unwrap();
                            assert_eq!(brmi_listing(&conn, &files).unwrap().len(), 5);
                        }
                        1 => {
                            let list = conn.lookup("list").unwrap();
                            assert_eq!(brmi_nth_value(&conn, &list, 2).unwrap(), 3);
                        }
                        _ => {
                            let translator = conn.lookup("translator").unwrap();
                            let out =
                                brmi_translate_all(&conn, &translator, &[Word::new("dog", "en")])
                                    .unwrap();
                            assert_eq!(out[0], Ok(Word::new("chien", "fr")));
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}
