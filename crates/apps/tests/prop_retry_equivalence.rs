//! The retry layer's semantic bar, as a property: for arbitrary concurrent
//! programs over the bank and list services, execution through keyed
//! connections over *lossy* links — seeded request and reply drops at the
//! client → relay tier AND the relay → origin tier, with transparent
//! reconnect-and-retry at both — is observably identical to the same
//! harness with zero drops: per-call results, exception cursors, final
//! server state, and the origin executor's counters (so not a single call
//! ran twice, no matter how many times its segment was re-sent).
//!
//! This is the paper's exactly-once *visible* contract end to end: clients
//! stamp idempotency keys, retry tiers re-send on failure, and the origin
//! reply cache absorbs every duplicate.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use brmi::executor::ExecutorStats;
use brmi::BatchExecutor;
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton, SessionReport};
use brmi_apps::list::{brmi_nth_value, ListNode, RemoteListSkeleton};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::fault::{FaultPlan, FaultPoint, FaultyTransport};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::relay::{BatchRelay, RelayPolicy};
use brmi_transport::retry::{RetryPolicy, RetryTransport};
use brmi_transport::Transport;
use proptest::prelude::*;

const ACCOUNT_LIMIT: f64 = 100.0;

/// Generous budget: with independent per-request and per-reply drop odds of
/// at most 25%, the chance of exhausting 32 immediate attempts is ~5e-12 —
/// a keyed round trip effectively always lands.
fn retry_policy() -> RetryPolicy {
    RetryPolicy::immediate(32)
}

fn relay_policy(budget: usize) -> RelayPolicy {
    RelayPolicy::builder()
        .max_coalesced_calls(budget)
        .max_delay(Duration::from_millis(1))
        .build()
}

/// A link that loses requests *and* replies, each with its own seeded,
/// reproducible drop sequence. `drop_per_mille == 0` is a perfect link, so
/// the fault-free reference run uses the identical stack.
fn lossy_link(inner: InProcTransport, seed: u64, drop_per_mille: u16) -> Arc<dyn Transport> {
    let requests = FaultyTransport::with_fault_point(
        inner,
        FaultPlan::Seeded {
            seed,
            drop_per_mille,
        },
        FaultPoint::Request,
    );
    FaultyTransport::with_fault_point(
        requests as Arc<dyn Transport>,
        FaultPlan::Seeded {
            seed: seed.rotate_left(17) ^ 0xBAD5_EED0_F00D_CAFE,
            drop_per_mille,
        },
        FaultPoint::Reply,
    ) as Arc<dyn Transport>
}

/// What one harness run observes: client-visible results plus the origin's
/// execution counters (the proof that nothing ran twice).
struct RunOutcome<T> {
    observations: Vec<T>,
    balances: Vec<Option<f64>>,
    executor: ExecutorStats,
    cache_executions: u64,
    cache_replays: u64,
}

/// One purchase amount: valid spends, an invalid (negative) amount, and an
/// overdraft-forcing amount, so sessions exercise the policy's continue
/// and break behaviour.
fn arb_amount() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => (1i32..60).prop_map(f64::from),
        1 => Just(-4.0),
        1 => Just(ACCOUNT_LIMIT + 400.0),
    ]
}

/// One program: a sequence of purchase sessions (each one batch chain).
fn arb_bank_program() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(arb_amount(), 0..5), 1..4)
}

/// Keyed concurrent execution over lossy retry-wrapped links: one client
/// thread per program, each with its own key source and its own seeded
/// drop schedule; the relay's upstream is equally lossy and retry-wrapped.
fn run_bank_keyed(
    programs: &[Vec<Vec<f64>>],
    budget: usize,
    seed: u64,
    drop_per_mille: u16,
) -> RunOutcome<Vec<SessionReport>> {
    let origin = RmiServer::new();
    let executor = BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    for i in 0..programs.len() {
        bank.open_account(&format!("cust{i}"), ACCOUNT_LIMIT);
    }
    let relay = BatchRelay::with_upstream_retry(
        lossy_link(
            InProcTransport::new(origin.clone()),
            seed ^ 0x5EED_0F0A_11AC_E5ED,
            drop_per_mille,
        ),
        relay_policy(budget),
        retry_policy(),
    );

    let gate = Arc::new(Barrier::new(programs.len()));
    let handles: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(i, program)| {
            let relay = Arc::clone(&relay);
            let gate = Arc::clone(&gate);
            let program = program.clone();
            std::thread::spawn(move || {
                let link = lossy_link(
                    InProcTransport::new(relay),
                    seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                    drop_per_mille,
                );
                let conn = Connection::new_keyed(RetryTransport::over(link, retry_policy()));
                let root = conn.lookup("bank").expect("keyed lookup survives drops");
                let customer = format!("cust{i}");
                gate.wait();
                program
                    .iter()
                    .map(|session| {
                        brmi_purchase_session(&conn, &root, &customer, session)
                            .expect("keyed session survives drops")
                    })
                    .collect::<Vec<SessionReport>>()
            })
        })
        .collect();
    let observations = handles
        .into_iter()
        .map(|handle| handle.join().expect("client thread panicked"))
        .collect();
    let balances = (0..programs.len())
        .map(|i| bank.balance_of(&format!("cust{i}")))
        .collect();
    relay.shutdown();
    RunOutcome {
        observations,
        balances,
        executor: executor.stats(),
        cache_executions: origin.reply_cache().executions(),
        cache_replays: origin.reply_cache().replays(),
    }
}

/// One list program: the chain node values plus the traversal depths to
/// query (some past the tail, so `EndOfListException` paths are covered).
fn arb_list_program() -> impl Strategy<Value = (Vec<i32>, Vec<usize>)> {
    (
        proptest::collection::vec(-50i32..50, 1..5),
        proptest::collection::vec(0usize..7, 1..5),
    )
}

type ListObservation = Vec<Result<i32, String>>;

fn run_list_keyed(
    programs: &[(Vec<i32>, Vec<usize>)],
    budget: usize,
    seed: u64,
    drop_per_mille: u16,
) -> RunOutcome<ListObservation> {
    let origin = RmiServer::new();
    let executor = BatchExecutor::install(&origin);
    for (i, (values, _)) in programs.iter().enumerate() {
        origin
            .bind(
                &format!("list{i}"),
                RemoteListSkeleton::remote_arc(ListNode::chain(values)),
            )
            .expect("fresh bind");
    }
    let relay = BatchRelay::with_upstream_retry(
        lossy_link(
            InProcTransport::new(origin.clone()),
            seed ^ 0x5EED_0F0A_11AC_E5ED,
            drop_per_mille,
        ),
        relay_policy(budget),
        retry_policy(),
    );

    let gate = Arc::new(Barrier::new(programs.len()));
    let handles: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(i, (_, depths))| {
            let relay = Arc::clone(&relay);
            let gate = Arc::clone(&gate);
            let depths = depths.clone();
            std::thread::spawn(move || {
                let link = lossy_link(
                    InProcTransport::new(relay),
                    seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9),
                    drop_per_mille,
                );
                let conn = Connection::new_keyed(RetryTransport::over(link, retry_policy()));
                let root = conn
                    .lookup(&format!("list{i}"))
                    .expect("keyed lookup survives drops");
                gate.wait();
                depths
                    .iter()
                    .map(|&n| brmi_nth_value(&conn, &root, n).map_err(|e| e.exception().to_owned()))
                    .collect::<ListObservation>()
            })
        })
        .collect();
    let observations = handles
        .into_iter()
        .map(|handle| handle.join().expect("client thread panicked"))
        .collect();
    relay.shutdown();
    RunOutcome {
        observations,
        balances: Vec::new(),
        executor: executor.stats(),
        cache_executions: origin.reply_cache().executions(),
        cache_replays: origin.reply_cache().replays(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bank service under lossy links: session reports, final balances,
    /// and every origin-side execution counter agree with the fault-free
    /// run of the identical harness — duplicates were absorbed by the
    /// reply cache, never re-executed.
    #[test]
    fn bank_programs_survive_drops_with_exactly_once_execution(
        programs in proptest::collection::vec(arb_bank_program(), 1..4),
        budget in 1usize..24,
        seed in any::<u64>(),
        drop_per_mille in 0u16..251,
    ) {
        let clean = run_bank_keyed(&programs, budget, seed, 0);
        let lossy = run_bank_keyed(&programs, budget, seed, drop_per_mille);
        prop_assert_eq!(&lossy.observations, &clean.observations);
        prop_assert_eq!(&lossy.balances, &clean.balances);
        prop_assert_eq!(lossy.executor, clean.executor,
            "executor counters must match: no batch or call may run twice");
        prop_assert_eq!(lossy.cache_executions, clean.cache_executions,
            "origin must execute each keyed frame exactly once");
        prop_assert_eq!(clean.cache_replays, 0, "a perfect link never replays");
    }

    /// List service under lossy links: traversal values and
    /// `EndOfListException` cursors agree with the fault-free run, with
    /// identical origin-side execution counters.
    #[test]
    fn list_programs_survive_drops_with_exactly_once_execution(
        programs in proptest::collection::vec(arb_list_program(), 1..4),
        budget in 1usize..16,
        seed in any::<u64>(),
        drop_per_mille in 0u16..251,
    ) {
        let clean = run_list_keyed(&programs, budget, seed, 0);
        let lossy = run_list_keyed(&programs, budget, seed, drop_per_mille);
        prop_assert_eq!(&lossy.observations, &clean.observations);
        prop_assert_eq!(lossy.executor, clean.executor,
            "executor counters must match: no batch or call may run twice");
        prop_assert_eq!(lossy.cache_executions, clean.cache_executions,
            "origin must execute each keyed frame exactly once");
    }
}

/// Deterministic guard that the property can't pass vacuously: with every
/// second reply lost on the client link (the session is lookup + one
/// flush, so the flush reply is always lost), retries *must* engage and
/// the origin *must* replay cached answers — and the account is charged
/// exactly once per purchase.
#[test]
fn reply_loss_forces_replays_not_reexecution() {
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let bank = Bank::new();
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    bank.open_account("solo", ACCOUNT_LIMIT);
    let relay = BatchRelay::new(
        Arc::new(InProcTransport::new(origin.clone())),
        relay_policy(8),
    );

    let faulty = FaultyTransport::with_fault_point(
        InProcTransport::new(relay.clone()),
        FaultPlan::EveryNth(2),
        FaultPoint::Reply,
    );
    let retried = RetryTransport::over(faulty.clone() as Arc<dyn Transport>, retry_policy());
    let conn = Connection::new_keyed(retried.clone());
    let root = conn.lookup("bank").expect("lookup");

    let report = brmi_purchase_session(&conn, &root, "solo", &[10.0, 20.0, 30.0])
        .expect("session survives reply loss");
    assert_eq!(report.purchase_errors, vec![None, None, None]);
    assert_eq!(report.credit_line, Ok(ACCOUNT_LIMIT - 60.0));
    assert_eq!(
        bank.balance_of("solo"),
        Some(60.0),
        "each purchase charged exactly once"
    );
    assert!(faulty.injected() > 0, "faults must actually strike");
    assert!(retried.retries() > 0, "the client must actually re-send");
    assert_eq!(
        origin.reply_cache().replays(),
        faulty.injected(),
        "every lost reply is answered again from the cache, nothing re-runs"
    );
    relay.shutdown();
}
