//! The durability layer's semantic bar, as a property: for arbitrary
//! concurrent keyed bank programs, power-cutting the origin at **any byte
//! of its durable log** and restarting it mid-workload — while the clients
//! ride the outage on [`RetryTransport`] — is observably identical to the
//! fault-free run: per-call session reports, final balances, the recovered
//! executor's counters, and the reply cache's execution count all match,
//! so not a single purchase ran twice and not a single acknowledged reply
//! was lost.
//!
//! The crash is injected with [`CrashPoint::at_byte`]: when the byte
//! budget runs out mid-append the write tears exactly there (a torn
//! partial record, what a power cut leaves behind) and every later log
//! operation fails. The supervisor notices, powers the origin port off
//! (in-flight replies die with the machine), rebuilds a fresh incarnation
//! with the *identical* deterministic setup, and recovers it from the
//! same directory via `attach_durable`. Clients never learn any of this
//! happened.
//!
//! Two suites:
//!
//! * an **exhaustive** sweep crashing one fixed workload at injection
//!   sites covering the whole journal extent — every byte of the first
//!   record (torn headers), then a fine stride across all later record
//!   boundaries and payload interiors;
//! * a **randomized** suite deriving workloads and crash sites from
//!   `BRMI_CRASH_SEED` (decimal `u64`; CI runs two seeds), so every CI
//!   run explores fresh interleavings reproducibly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

use brmi::executor::ExecutorStats;
use brmi::BatchExecutor;
use brmi_apps::bank::{brmi_purchase_session, Bank, CreditManagerSkeleton, SessionReport};
use brmi_durable::{CrashPoint, TempDir};
use brmi_rmi::{Connection, DurableOptions, DurableReport, RmiServer};
use brmi_transport::retry::{RetryPolicy, RetryTransport};
use brmi_transport::{RequestHandler, Transport};
use brmi_wire::protocol::Frame;
use brmi_wire::RemoteError;
use parking_lot::RwLock;

const ACCOUNT_LIMIT: f64 = 1000.0;

/// Generous budget with short waits: an outage lasts as long as the
/// supervisor takes to notice the crash and replay the journal — a few
/// milliseconds — while this policy rides out hundreds.
fn outage_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 400,
        base_delay: Duration::from_micros(200),
        max_delay: Duration::from_millis(2),
        jitter_per_mille: 250,
        jitter_seed: seed,
    }
}

/// The wire between the clients and whichever origin incarnation is
/// currently powered on. A crashed origin still *computes* in its dying
/// memory, but nothing escapes the machine after the power cut: once the
/// journal reports the crash, every reply is turned into a transport
/// error (the retry signal), and while no incarnation is installed the
/// port refuses outright.
struct OriginPort {
    origin: RwLock<Option<Arc<RmiServer>>>,
}

impl OriginPort {
    fn new() -> Arc<OriginPort> {
        Arc::new(OriginPort {
            origin: RwLock::new(None),
        })
    }

    fn install(&self, server: &Arc<RmiServer>) {
        *self.origin.write() = Some(Arc::clone(server));
    }

    fn power_off(&self) {
        *self.origin.write() = None;
    }
}

impl Transport for OriginPort {
    fn request(&self, frame: Frame) -> Result<Frame, RemoteError> {
        let Some(server) = self.origin.read().clone() else {
            return Err(RemoteError::transport(
                "origin is down: crashed and not yet restarted",
            ));
        };
        let reply = server.handle(frame);
        if server
            .journal()
            .is_some_and(|journal| journal.log().is_crashed())
        {
            return Err(RemoteError::transport(
                "origin lost power before the reply left the machine",
            ));
        }
        Ok(reply)
    }
}

/// One origin incarnation: the deterministic setup phase (identical for
/// the original and every recovered instance, as `attach_durable`
/// requires) plus the recovery report.
struct Incarnation {
    server: Arc<RmiServer>,
    executor: Arc<BatchExecutor>,
    bank: Arc<Bank>,
    report: DurableReport,
}

fn incarnate(dir: &Path, accounts: usize) -> Incarnation {
    let server = RmiServer::new();
    let executor = BatchExecutor::install(&server);
    let bank = Bank::new();
    server
        .bind("bank", CreditManagerSkeleton::remote_arc(bank.clone()))
        .expect("fresh origin bind");
    for i in 0..accounts {
        bank.open_account(&format!("cust{i}"), ACCOUNT_LIMIT);
    }
    // Snapshots off: recovery replays the full journal, so the bank needs
    // no `DurableState` — every balance is rebuilt by re-execution.
    let report = server
        .attach_durable(
            dir,
            DurableOptions {
                snapshot_every: 0,
                ..DurableOptions::default()
            },
        )
        .expect("attach durable log");
    Incarnation {
        server,
        executor,
        bank,
        report,
    }
}

/// What one harness run observes: client-visible results plus the *final*
/// origin's execution counters (the proof nothing ran twice) and the
/// journal accounting used to size the injection sweep.
struct RunOutcome {
    observations: Vec<Vec<SessionReport>>,
    balances: Vec<Option<f64>>,
    executor: ExecutorStats,
    cache_executions: u64,
    cache_replays: u64,
    appended_bytes: u64,
    recovery: Option<DurableReport>,
    client_retries: u64,
}

/// Runs `programs` (one client thread each, sessions in order) against a
/// durable origin. With `crash_at: Some(n)`, a power cut is armed `n`
/// bytes into the journal's write stream and a supervisor restarts the
/// origin from disk when it strikes; clients ride the outage on their
/// retry transports.
fn run_bank(programs: &[Vec<Vec<f64>>], crash_at: Option<u64>) -> RunOutcome {
    let dir = TempDir::new("prop-crash-recovery");
    let port = OriginPort::new();
    let current = Arc::new(Mutex::new(incarnate(dir.path(), programs.len())));
    {
        let incarnation = current.lock().expect("incarnation lock");
        if let Some(budget) = crash_at {
            incarnation
                .server
                .journal()
                .expect("journal attached")
                .log()
                .arm_crash(CrashPoint::at_byte(budget));
        }
        port.install(&incarnation.server);
    }

    let done = Arc::new(AtomicBool::new(false));
    let recovery: Arc<Mutex<Option<DurableReport>>> = Arc::new(Mutex::new(None));
    let supervisor = crash_at.map(|_| {
        let port = Arc::clone(&port);
        let current = Arc::clone(&current);
        let done = Arc::clone(&done);
        let recovery = Arc::clone(&recovery);
        let dir: PathBuf = dir.path().to_path_buf();
        let accounts = programs.len();
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let crashed = current
                    .lock()
                    .expect("incarnation lock")
                    .server
                    .journal()
                    .expect("journal attached")
                    .log()
                    .is_crashed();
                if crashed {
                    // The machine is gone; nothing more leaves it.
                    port.power_off();
                    let reborn = incarnate(&dir, accounts);
                    *recovery.lock().expect("recovery lock") = Some(reborn.report);
                    port.install(&reborn.server);
                    *current.lock().expect("incarnation lock") = reborn;
                    return;
                }
                std::thread::sleep(Duration::from_micros(200));
            }
        })
    });

    let gate = Arc::new(Barrier::new(programs.len()));
    let handles: Vec<_> = programs
        .iter()
        .enumerate()
        .map(|(i, program)| {
            let port = Arc::clone(&port);
            let gate = Arc::clone(&gate);
            let program = program.clone();
            std::thread::spawn(move || {
                let retried = RetryTransport::over(
                    port as Arc<dyn Transport>,
                    outage_policy(0x0B5E_55ED ^ (i as u64)),
                );
                let conn = Connection::new_keyed(Arc::clone(&retried) as Arc<dyn Transport>);
                let root = conn.lookup("bank").expect("keyed lookup rides the outage");
                let customer = format!("cust{i}");
                gate.wait();
                let reports = program
                    .iter()
                    .map(|session| {
                        brmi_purchase_session(&conn, &root, &customer, session)
                            .expect("keyed session rides the outage")
                    })
                    .collect::<Vec<SessionReport>>();
                (reports, retried.retries())
            })
        })
        .collect();

    let mut observations = Vec::new();
    let mut client_retries = 0u64;
    for handle in handles {
        let (reports, retries) = handle.join().expect("client thread panicked");
        observations.push(reports);
        client_retries += retries;
    }
    done.store(true, Ordering::Relaxed);
    if let Some(supervisor) = supervisor {
        supervisor.join().expect("supervisor panicked");
    }

    let final_incarnation = current.lock().expect("incarnation lock");
    let balances = (0..programs.len())
        .map(|i| final_incarnation.bank.balance_of(&format!("cust{i}")))
        .collect();
    let stats = final_incarnation
        .server
        .journal()
        .expect("journal attached")
        .stats();
    let recovered = recovery.lock().expect("recovery lock").take();
    RunOutcome {
        observations,
        balances,
        executor: final_incarnation.executor.stats(),
        cache_executions: final_incarnation.server.reply_cache().executions(),
        cache_replays: final_incarnation.server.reply_cache().replays(),
        appended_bytes: stats.bytes,
        recovery: recovered,
        client_retries,
    }
}

/// The restart-transparency contract, checked field by field against the
/// fault-free reference run.
fn assert_equivalent(site: u64, clean: &RunOutcome, crashed: &RunOutcome) {
    assert_eq!(
        crashed.observations, clean.observations,
        "site {site}: client-visible session reports diverged"
    );
    assert_eq!(
        crashed.balances, clean.balances,
        "site {site}: final balances diverged (a purchase was lost or double-charged)"
    );
    assert_eq!(
        crashed.executor, clean.executor,
        "site {site}: recovered executor counters diverged — a batch ran twice or never"
    );
    assert_eq!(
        crashed.cache_executions, clean.cache_executions,
        "site {site}: the recovered origin must execute each keyed frame exactly once"
    );
}

/// One fixed concurrent workload, crashed at injection sites covering the
/// whole journal: every byte of the first record's header and payload,
/// then a fine stride to the last byte — torn headers, torn payloads, and
/// record boundaries all included. Every site must recover to the
/// fault-free outcome, and at least one must force the recovered reply
/// cache to *replay* (not re-execute) a pre-crash key.
#[test]
fn every_injection_site_recovers_to_the_fault_free_outcome() {
    let programs = vec![
        vec![vec![10.0, 5.0], vec![25.0]],
        vec![vec![40.0], vec![-4.0, 8.0, ACCOUNT_LIMIT + 400.0]],
    ];
    let clean = run_bank(&programs, None);
    assert!(clean.recovery.is_none());
    assert_eq!(clean.cache_replays, 0, "a fault-free run never replays");
    let total = clean.appended_bytes;
    assert!(total > 0, "the workload must journal something");

    let stride = (total / 40).max(1);
    let mut sites: Vec<u64> = (0..total)
        .step_by(usize::try_from(stride).expect("stride"))
        .collect();
    sites.extend(0..total.min(16)); // byte-by-byte through the first record
    sites.push(total - 1);
    sites.sort_unstable();
    sites.dedup();

    let mut sites_with_replays = 0u32;
    for &site in &sites {
        let crashed = run_bank(&programs, Some(site));
        assert!(
            crashed.client_retries > 0,
            "site {site}: the crash must actually disrupt traffic"
        );
        let recovery = crashed
            .recovery
            .unwrap_or_else(|| panic!("site {site}: the supervisor must have recovered"));
        assert!(
            recovery.truncated_records <= 1,
            "site {site}: at most the one record crossing the budget tears: {recovery:?}"
        );
        assert_equivalent(site, &clean, &crashed);
        if crashed.cache_replays > 0 {
            sites_with_replays += 1;
        }
    }
    assert!(
        sites_with_replays > 0,
        "some site must catch a client mid-retry so the recovered cache replays a journaled reply"
    );
}

/// SplitMix64 — the workspace's standard seeded stream, so the randomized
/// suite reproduces exactly from `BRMI_CRASH_SEED`.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random concurrent programs (valid spends, invalid negatives, overdraft
/// breaks), each crashed at a random journal byte and compared against
/// its own fault-free run. `BRMI_CRASH_SEED` (decimal `u64`) selects the
/// stream; CI runs the suite at two seeds.
#[test]
fn randomized_workloads_recover_under_seeded_crashes() {
    let seed = std::env::var("BRMI_CRASH_SEED")
        .ok()
        .and_then(|raw| raw.trim().parse::<u64>().ok())
        .unwrap_or(0xB0A7_5EED);
    let mut rng = seed;
    for round in 0..5 {
        let clients = 1 + (next_rand(&mut rng) % 3) as usize;
        let programs: Vec<Vec<Vec<f64>>> = (0..clients)
            .map(|_| {
                let sessions = 1 + (next_rand(&mut rng) % 3) as usize;
                (0..sessions)
                    .map(|_| {
                        let purchases = (next_rand(&mut rng) % 4) as usize;
                        (0..purchases)
                            .map(|_| match next_rand(&mut rng) % 8 {
                                0 => -4.0,
                                1 => ACCOUNT_LIMIT + 400.0,
                                _ => (1 + next_rand(&mut rng) % 60) as f64,
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let clean = run_bank(&programs, None);
        assert!(clean.appended_bytes > 0, "every client journals its lookup");
        let site = next_rand(&mut rng) % clean.appended_bytes;
        let crashed = run_bank(&programs, Some(site));
        let recovery = crashed.recovery.unwrap_or_else(|| {
            panic!("seed {seed} round {round}: the supervisor must have recovered")
        });
        assert!(
            recovery.truncated_records <= 1,
            "seed {seed} round {round}: torn tail is at most one record: {recovery:?}"
        );
        assert!(
            crashed.client_retries > 0,
            "seed {seed} round {round}: the crash at byte {site} must disrupt traffic"
        );
        assert_equivalent(site, &clean, &crashed);
    }
}
