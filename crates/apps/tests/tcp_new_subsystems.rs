//! End-to-end coverage of the extension subsystems over real TCP:
//! the implicit-batching runtime, distributed GC, the DTO facade and
//! concurrent chained-batch sessions all have to work over actual
//! sockets, not just the in-process transport.

use std::sync::Arc;
use std::time::Duration;

use brmi::policy::AbortPolicy;
use brmi::{Batch, BatchExecutor};
use brmi_apps::fileserver::{
    dto_listing, rmi_listing, DirectoryFacadeSkeleton, DirectoryFacadeStub, DirectorySkeleton,
    DirectoryStub, FacadeServer, InMemoryDirectory,
};
use brmi_apps::implicit_clients::{implicit_listing, implicit_nth_value};
use brmi_apps::list::{BRemoteList, ListNode, RemoteListSkeleton, RemoteListStub};
use brmi_rmi::{Connection, DgcConfig, LeaseHolder, RmiServer};
use brmi_transport::clock::{Clock, VirtualClock};
use brmi_transport::tcp::{TcpServer, TcpTransport};
use brmi_wire::RemoteErrorKind;

struct TcpRig {
    server: Arc<RmiServer>,
    tcp: TcpServer,
    clock: Arc<VirtualClock>,
}

fn rig() -> TcpRig {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let clock = VirtualClock::new();
    server.enable_dgc(
        clock.clone(),
        DgcConfig {
            max_lease: Duration::from_secs(30),
        },
    );

    let dir = InMemoryDirectory::new();
    dir.populate(6, 128);
    server
        .bind("files", DirectorySkeleton::remote_arc(dir.clone()))
        .unwrap();
    server
        .bind(
            "facade",
            DirectoryFacadeSkeleton::remote_arc(FacadeServer::new(dir)),
        )
        .unwrap();
    server
        .bind(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(&[7, 14, 21, 28, 35])),
        )
        .unwrap();

    let tcp = TcpServer::bind("127.0.0.1:0", server.clone()).unwrap();
    TcpRig { server, tcp, clock }
}

fn connect(rig: &TcpRig) -> Connection {
    Connection::new(Arc::new(
        TcpTransport::connect(rig.tcp.local_addr()).unwrap(),
    ))
}

#[test]
fn implicit_runtime_works_over_tcp() {
    let rig = rig();
    let conn = connect(&rig);
    let files = conn.lookup("files").unwrap();
    let rows = implicit_listing(&conn, &files).unwrap();
    assert_eq!(rows.len(), 6);

    let list = conn.lookup("list").unwrap();
    assert_eq!(implicit_nth_value(&conn, &list, 3).unwrap(), 28);
}

#[test]
fn dto_facade_works_over_tcp() {
    let rig = rig();
    let conn = connect(&rig);
    let files = conn.lookup("files").unwrap();
    let facade = conn.lookup("facade").unwrap();
    let via_facade = dto_listing(&DirectoryFacadeStub::new(facade)).unwrap();
    let via_rmi = rmi_listing(&DirectoryStub::new(files)).unwrap();
    assert_eq!(via_facade, via_rmi);
}

#[test]
fn dgc_lease_lifecycle_over_tcp() {
    let rig = rig();
    let conn = connect(&rig);
    let dgc = rig.server.dgc().unwrap();

    // An RMI hop exports the next node with a lease.
    let list = conn.lookup("list").unwrap();
    let head = RemoteListStub::new(list);
    let second = head.next().unwrap();
    assert_eq!(dgc.lease_count(), 1);

    // Track and renew it over the socket.
    let holder = LeaseHolder::new(conn.clone(), Duration::from_secs(30));
    holder.track(second.remote_ref().id());
    rig.clock.advance(Duration::from_secs(25));
    holder.renew_all().unwrap();
    rig.clock.advance(Duration::from_secs(25));
    assert_eq!(rig.server.dgc_sweep(), 0, "renewed in time");
    assert_eq!(second.get_value().unwrap(), 14);

    // Let it lapse: the stub dies, the chain can be re-fetched.
    rig.clock.advance(Duration::from_secs(31));
    assert_eq!(rig.server.dgc_sweep(), 1);
    assert_eq!(
        second.get_value().unwrap_err().kind(),
        RemoteErrorKind::NoSuchObject
    );
    assert_eq!(head.next().unwrap().get_value().unwrap(), 14);
}

#[test]
fn concurrent_chained_sessions_do_not_interfere() {
    let rig = rig();
    let addr = rig.tcp.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|worker| {
            std::thread::spawn(move || {
                let conn = Connection::new(Arc::new(TcpTransport::connect(addr).unwrap()));
                let list = conn.lookup("list").unwrap();
                for _ in 0..5 {
                    // Each iteration holds a chained session open across
                    // two flushes, interleaved with other workers'.
                    let batch = Batch::new(conn.clone(), AbortPolicy);
                    let head = BRemoteList::new(&batch, &list);
                    let second = head.next();
                    batch.flush_and_continue().unwrap();
                    let value = second.get_value();
                    let third_value = second.next().get_value();
                    batch.flush().unwrap();
                    assert_eq!(value.get().unwrap(), 14, "worker {worker}");
                    assert_eq!(third_value.get().unwrap(), 21);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // Every chained session was released by its final flush.
    assert_eq!(
        rig.server.dgc().unwrap().lease_count(),
        0,
        "chained batches export nothing, so no leases either"
    );
}

#[test]
fn implicit_runtimes_from_many_threads() {
    let rig = rig();
    let addr = rig.tcp.local_addr();
    let handles: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let conn = Connection::new(Arc::new(TcpTransport::connect(addr).unwrap()));
                let list = conn.lookup("list").unwrap();
                for n in 0..5 {
                    assert_eq!(
                        implicit_nth_value(&conn, &list, n).unwrap(),
                        7 * (n as i32 + 1)
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
}
