//! The paper's Translator case study on the simulated wireless network:
//! batch size decided at runtime, with simulated latency showing why it
//! matters.
//!
//! ```sh
//! cargo run -p brmi-apps --example translator_pipeline
//! ```

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::translator::{
    brmi_translate_all, rmi_translate_all, DictionaryTranslator, TranslatorSkeleton,
    TranslatorStub, Word,
};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::clock::VirtualClock;
use brmi_transport::sim::SimTransport;
use brmi_transport::NetworkProfile;
use brmi_wire::RemoteError;

fn main() -> Result<(), RemoteError> {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let translator = DictionaryTranslator::english_to_french();
    let words: Vec<Word> = translator
        .known_words()
        .into_iter()
        .map(|w| Word::new(&w, "en"))
        .collect();
    server.bind("translator", TranslatorSkeleton::remote_arc(translator))?;

    // The paper's wireless testbed, in virtual time.
    let clock = VirtualClock::new();
    let transport = SimTransport::new(
        server.clone(),
        NetworkProfile::wireless_54mbps(),
        clock.clone(),
    );
    let conn = Connection::new(Arc::new(transport));
    let remote = conn.lookup("translator")?;

    println!(
        "translating {} words over simulated 54 Mbps wireless\n",
        words.len()
    );

    clock.reset();
    let rmi = rmi_translate_all(&TranslatorStub::new(remote.clone()), &words)?;
    let rmi_ms = clock.elapsed_millis();

    clock.reset();
    let brmi = brmi_translate_all(&conn, &remote, &words)?;
    let brmi_ms = clock.elapsed_millis();

    assert_eq!(rmi, brmi, "both clients must translate identically");
    for (word, result) in words.iter().zip(&brmi) {
        match result {
            Ok(translated) => println!("  {:>8} -> {}", word.text, translated.text),
            Err(exception) => println!("  {:>8} -> ({exception})", word.text),
        }
    }
    println!("\nRMI:  one request per word  = {rmi_ms:.2} ms simulated");
    println!("BRMI: one batch for all words = {brmi_ms:.2} ms simulated");
    println!("speedup: {:.1}x", rmi_ms / brmi_ms);
    Ok(())
}
