//! The paper's Bank case study (Section 5.1): a purchase session folded
//! into one batch, protected by a custom exception policy that aborts only
//! when the account lookup fails.
//!
//! ```sh
//! cargo run -p brmi-apps --example bank_teller
//! ```

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::bank::{
    brmi_purchase_session, rmi_purchase_session, Bank, CreditManagerSkeleton, CreditManagerStub,
};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_wire::RemoteError;

fn main() -> Result<(), RemoteError> {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let bank = Bank::new();
    bank.open_account("alice", 1_000.0);
    server.bind("bank", CreditManagerSkeleton::remote_arc(bank))?;

    let transport = InProcTransport::new(server.clone());
    let stats = transport.stats();
    let conn = Connection::new(Arc::new(transport));
    let manager = conn.lookup("bank")?;

    let amounts = [123.0, 456.0, 800.0, 10.0]; // the third overdrafts

    println!("RMI session (lookup + purchases + credit line):");
    let report = rmi_purchase_session(&CreditManagerStub::new(manager.clone()), "alice", &amounts)?;
    for (amount, outcome) in amounts.iter().zip(&report.purchase_errors) {
        match outcome {
            None => println!("  purchase {amount:>7.2}: ok"),
            Some(exception) => println!("  purchase {amount:>7.2}: {exception}"),
        }
    }
    println!("  credit line: {:?}", report.credit_line);
    println!("  round trips: {}\n", stats.requests());

    stats.reset();
    println!("BRMI session (same work, custom policy, ONE round trip):");
    let report = brmi_purchase_session(&conn, &manager, "alice", &amounts)?;
    for (amount, outcome) in amounts.iter().zip(&report.purchase_errors) {
        match outcome {
            None => println!("  purchase {amount:>7.2}: ok"),
            Some(exception) => println!("  purchase {amount:>7.2}: {exception}"),
        }
    }
    println!("  credit line: {:?}", report.credit_line);
    println!("  round trips: {}\n", stats.requests());

    println!("Unknown customer: the policy breaks the batch at the lookup:");
    let report = brmi_purchase_session(&conn, &manager, "mallory", &[42.0])?;
    println!("  purchases:   {:?}", report.purchase_errors);
    println!("  credit line: {:?}", report.credit_line);
    Ok(())
}
