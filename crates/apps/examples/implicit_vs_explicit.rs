//! Implicit vs explicit batching on the paper's running example.
//!
//! The paper argues (Section 1) that implicit batching is "weaker and
//! more unpredictable" than explicit batches: exception handlers and
//! value-dependent loops force flushes the programmer cannot see. This
//! example runs the same directory-listing workload three ways and
//! prints the round trips each one paid.
//!
//! ```sh
//! cargo run -p brmi-apps --example implicit_vs_explicit
//! ```

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::fileserver::{
    brmi_listing, rmi_listing, DirectorySkeleton, DirectoryStub, InMemoryDirectory,
};
use brmi_apps::implicit_clients::{implicit_listing, implicit_listing_restructured};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_wire::RemoteError;

fn main() -> Result<(), RemoteError> {
    let directory = InMemoryDirectory::new();
    directory.populate(10, 1024);
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    server.bind("files", DirectorySkeleton::remote_arc(directory))?;

    let transport = InProcTransport::new(server.clone());
    let stats = transport.stats();
    let conn = Connection::new(Arc::new(transport));
    let root = conn.lookup("files")?;

    println!("listing 10 remote files (name, type, date, length each):\n");

    stats.reset();
    let rows = rmi_listing(&DirectoryStub::new(root.clone()))?;
    println!("RMI                   {:>3} round trips", stats.requests());

    stats.reset();
    let implicit = implicit_listing(&conn, &root)?;
    println!("implicit (natural)    {:>3} round trips", stats.requests());
    assert_eq!(rows, implicit);

    stats.reset();
    let restructured = implicit_listing_restructured(&conn, &root)?;
    println!("implicit (restruct.)  {:>3} round trips", stats.requests());
    assert_eq!(rows, restructured);

    stats.reset();
    let explicit = brmi_listing(&conn, &root)?;
    println!("BRMI cursor           {:>3} round trips", stats.requests());
    assert_eq!(rows, explicit);

    println!(
        "\nSame rows every time; only the communication pattern differs.\n\
         The implicit client cannot use a cursor, so the natural loop\n\
         demands values per file; explicit batching states the batch\n\
         boundary and pays one round trip."
    );
    Ok(())
}
