//! Distributed GC in action: RMI's per-result exports need leases;
//! BRMI's identity preservation sidesteps the whole machinery.
//!
//! ```sh
//! cargo run -p brmi-apps --example dgc_leases
//! ```

use std::sync::Arc;
use std::time::Duration;

use brmi::BatchExecutor;
use brmi_apps::list::{
    brmi_nth_value, rmi_nth_value, ListNode, RemoteListSkeleton, RemoteListStub,
};
use brmi_rmi::{Connection, DgcConfig, LeaseHolder, RmiServer};
use brmi_transport::clock::{Clock, VirtualClock};
use brmi_transport::inproc::InProcTransport;
use brmi_wire::RemoteError;

fn main() -> Result<(), RemoteError> {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let clock = VirtualClock::new();
    let dgc = server.enable_dgc(
        clock.clone(),
        DgcConfig {
            max_lease: Duration::from_secs(30),
        },
    );
    let values: Vec<i32> = (1..=8).map(|i| i * 10).collect();
    server.bind(
        "list",
        RemoteListSkeleton::remote_arc(ListNode::chain(&values)),
    )?;
    let conn = Connection::new(Arc::new(InProcTransport::new(server.clone())));
    let head = conn.lookup("list")?;

    println!("traversing 5 hops of a remote linked list\n");

    // RMI: each hop exports the next node and grants a lease.
    let mut node = RemoteListStub::new(head.clone());
    let holder = LeaseHolder::new(conn.clone(), Duration::from_secs(30));
    for _ in 0..5 {
        node = node.next()?;
        holder.track(node.remote_ref().id());
    }
    println!(
        "RMI:  value {} — {} leases live, client must renew them",
        node.get_value()?,
        dgc.lease_count()
    );

    // Renewals keep the stubs alive...
    clock.advance(Duration::from_secs(25));
    holder.renew_all()?;
    clock.advance(Duration::from_secs(25));
    println!(
        "      after renewal: {} reclaimed, value still {}",
        server.dgc_sweep(),
        node.get_value()?
    );

    // ...until the client stops renewing.
    clock.advance(Duration::from_secs(31));
    println!(
        "      client gone: {} exports reclaimed, stub now fails: {}",
        server.dgc_sweep(),
        node.get_value().unwrap_err()
    );

    // BRMI: the same traversal grants nothing and leaks nothing.
    let before = dgc.stats().granted;
    let value = brmi_nth_value(&conn, &head, 5)?;
    println!(
        "\nBRMI: value {value} — {} new leases (identity preservation keeps\n      batch results out of the export table)",
        dgc.stats().granted - before
    );

    // And the RMI client can always start over from the pinned root.
    let value = rmi_nth_value(&RemoteListStub::new(head), 5)?;
    println!("RMI again from the pinned root: value {value}");
    Ok(())
}
