//! Quickstart: define a remote interface, serve it, and batch three calls
//! into one round trip.
//!
//! ```sh
//! cargo run -p brmi-apps --example quickstart
//! ```

use std::sync::Arc;

use brmi::policy::AbortPolicy;
use brmi::{remote_interface, Batch, BatchExecutor};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_wire::RemoteError;

remote_interface! {
    /// A trivial greeting service.
    pub interface Greeter {
        fn greet(name: String) -> String;
        fn greetings_served() -> i64;
    }
}

struct English {
    served: std::sync::atomic::AtomicI64,
}

impl Greeter for English {
    fn greet(&self, name: String) -> Result<String, RemoteError> {
        self.served
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(format!("hello, {name}!"))
    }

    fn greetings_served(&self) -> Result<i64, RemoteError> {
        Ok(self.served.load(std::sync::atomic::Ordering::Relaxed))
    }
}

fn main() -> Result<(), RemoteError> {
    // --- server side -----------------------------------------------------
    let server = RmiServer::new();
    BatchExecutor::install(&server); // enables invoke_batch for every object
    server.bind(
        "greeter",
        GreeterSkeleton::remote_arc(Arc::new(English {
            served: std::sync::atomic::AtomicI64::new(0),
        })),
    )?;

    // --- client side -----------------------------------------------------
    let transport = InProcTransport::new(server.clone());
    let stats = transport.stats();
    let conn = Connection::new(Arc::new(transport));
    let remote = conn.lookup("greeter")?;

    // Plain RMI: one round trip per call.
    let stub = GreeterStub::new(remote.clone());
    println!("RMI:  {}", stub.greet("alice".into())?);
    println!("RMI:  {}", stub.greet("bob".into())?);
    println!("      ({} round trips so far)", stats.requests());

    // BRMI: record three calls, flush once.
    let batch = Batch::new(conn, AbortPolicy);
    let greeter = BGreeter::new(&batch, &remote);
    let carol = greeter.greet("carol".into());
    let dave = greeter.greet("dave".into());
    let total = greeter.greetings_served();
    batch.flush()?; // a single round trip for all three calls

    println!("BRMI: {}", carol.get()?);
    println!("BRMI: {}", dave.get()?);
    println!("BRMI: greetings served: {}", total.get()?);
    println!("      ({} round trips total)", stats.requests());
    Ok(())
}
