//! Feel the latency: the same linked-list traversal over a simulated
//! wireless link with *real* sleeps (`SleepClock`), so the RMI version
//! visibly stalls while the BRMI version returns at once.
//!
//! ```sh
//! cargo run -p brmi-apps --example latency_demo
//! ```

use std::sync::Arc;
use std::time::Instant;

use brmi::BatchExecutor;
use brmi_apps::list::{
    brmi_nth_value, rmi_nth_value, ListNode, RemoteListSkeleton, RemoteListStub,
};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::clock::SleepClock;
use brmi_transport::sim::SimTransport;
use brmi_transport::NetworkProfile;
use brmi_wire::RemoteError;

fn main() -> Result<(), RemoteError> {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let values: Vec<i32> = (0..25).map(|i| i * 3).collect();
    server.bind(
        "list",
        RemoteListSkeleton::remote_arc(ListNode::chain(&values)),
    )?;

    // Exaggerate the paper's wireless profile so the stall is tangible.
    let mut profile = NetworkProfile::wireless_54mbps();
    profile.rtt = std::time::Duration::from_millis(40);
    let transport = SimTransport::new(server.clone(), profile, SleepClock::new());
    let conn = Connection::new(Arc::new(transport));
    let head = conn.lookup("list")?;

    let hops = 20;
    println!("traversing {hops} remote-list hops over a 40 ms RTT link (real sleeps)\n");

    let start = Instant::now();
    let value = rmi_nth_value(&RemoteListStub::new(head.clone()), hops)?;
    println!(
        "RMI:  value {value} after {:>6.1} ms  ({} round trips)",
        start.elapsed().as_secs_f64() * 1e3,
        hops + 1
    );

    let start = Instant::now();
    let value = brmi_nth_value(&conn, &head, hops)?;
    println!(
        "BRMI: value {value} after {:>6.1} ms  (1 round trip)",
        start.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
