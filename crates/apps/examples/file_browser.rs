//! The paper's Remote File Server over real TCP: a server thread exports a
//! directory; the client prints a listing (RMI vs BRMI round-trip counts)
//! and then deletes old files with the two-batch chained pattern of
//! Section 3.5.
//!
//! ```sh
//! cargo run -p brmi-apps --example file_browser
//! ```

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_apps::fileserver::{
    brmi_delete_older_than, brmi_listing, rmi_listing, DirectorySkeleton, DirectoryStub,
    InMemoryDirectory,
};
use brmi_rmi::{Connection, RmiServer};
use brmi_transport::tcp::{TcpServer, TcpTransport};
use brmi_wire::{DateMillis, RemoteError};

fn main() -> Result<(), RemoteError> {
    // --- server ----------------------------------------------------------
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let directory = InMemoryDirectory::new();
    directory.populate(8, 2048); // 8 files, modified at t=0s,1s,...,7s
    server.bind("files", DirectorySkeleton::remote_arc(directory))?;
    let tcp = TcpServer::bind("127.0.0.1:0", server.clone())?;
    println!(
        "file server listening on rmi://{}/files\n",
        tcp.local_addr()
    );

    // --- client ----------------------------------------------------------
    let conn = Connection::new(Arc::new(TcpTransport::connect(tcp.local_addr())?));
    let root = conn.lookup("files")?;

    println!("RMI listing (1 + 4n round trips):");
    for row in rmi_listing(&DirectoryStub::new(root.clone()))? {
        println!(
            "  {:<8} isDirectory={:<5} lastModified={:<10} length={}",
            row.name, row.is_directory, row.last_modified, row.length
        );
    }

    println!("\nBRMI listing (one round trip, via a cursor):");
    for row in brmi_listing(&conn, &root)? {
        println!(
            "  {:<8} isDirectory={:<5} lastModified={:<10} length={}",
            row.name, row.is_directory, row.last_modified, row.length
        );
    }

    println!("\nDeleting files older than t+4000ms (two chained batches):");
    let deleted = brmi_delete_older_than(&conn, &root, DateMillis(4_000))?;
    println!("  deleted: {deleted:?}");

    println!("\nRemaining files:");
    for row in brmi_listing(&conn, &root)? {
        println!("  {:<8} lastModified={}", row.name, row.last_modified);
    }
    Ok(())
}
