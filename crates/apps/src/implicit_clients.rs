//! Implicit-batching clients for the benchmark scenarios.
//!
//! The paper compares explicit batching against *implicit* systems (Thor
//! batched futures, communication restructuring, Future-based RMI) only
//! subjectively, because no public Java implementation existed. These
//! clients drive the same workloads through [`brmi_implicit`], written
//! the way the corresponding implicit system would execute the *natural*
//! RMI client: calls are delayed, demands force a flush, and a
//! [`barrier`](brmi_implicit::ImplicitRuntime::barrier) stands at every
//! point where an implicit analysis must flush (entry to an exception
//! handler, value-dependent control flow).
//!
//! Each function documents its round-trip count so the benchmarks and
//! differential tests can assert the paper's qualitative claims:
//! implicit batching lands *between* RMI and BRMI on loops (no cursors),
//! matches BRMI on straight-line code, and degrades to per-call round
//! trips under fine-grained exception handling.
//!
//! A modelling note on the trailing round trip: like Future-based RMI,
//! the runtime keeps remote results server-side between flushes, so a
//! client that ever forced a partial flush ends with a live server
//! session. Releasing it costs one final round trip —
//! an honest cost of not knowing, as the explicit client does, which
//! flush is the last one.

use brmi_implicit::{ImplicitRuntime, Lazy};
use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::{DateMillis, RemoteError};

use crate::fileserver::{BDirectory, BRemoteFile, DirectoryStub, ListingRow, TolerantRead};
use crate::list::BRemoteList;
use crate::noop::BNoop;

/// No-op sequence under implicit batching: all `n` calls are delayed and
/// the final flush ships them together — **1 round trip**, same as BRMI
/// (straight-line code is implicit batching's best case).
///
/// # Errors
///
/// Transport failures at the final flush.
pub fn implicit_noops(conn: &Connection, root: &RemoteRef, n: usize) -> Result<(), RemoteError> {
    let rt = ImplicitRuntime::new(conn.clone());
    let noop: BNoop = rt.stub(root);
    let pending: Vec<Lazy<()>> = (0..n).map(|_| rt.lazy(noop.noop())).collect();
    rt.finish()?;
    for call in pending {
        call.get()?;
    }
    Ok(())
}

/// Linked-list traversal under implicit batching: the `next()` chain is
/// remote-returning, so nothing is demanded until the final value —
/// **2 round trips** (the demand flush plus the session release),
/// against BRMI's 1 and RMI's `n + 1`.
///
/// # Errors
///
/// Transport failures; `EndOfListException` when the chain is shorter
/// than `n`.
pub fn implicit_nth_value(
    conn: &Connection,
    head: &RemoteRef,
    n: usize,
) -> Result<i32, RemoteError> {
    let rt = ImplicitRuntime::new(conn.clone());
    let mut current: BRemoteList = rt.stub(head);
    for _ in 0..n {
        current = current.next();
    }
    let value = rt.lazy(current.get_value());
    let result = value.get();
    rt.finish()?;
    result
}

/// Directory listing as the natural implicit client: the file array is
/// fetched eagerly (implicit systems have no cursors, so the remote
/// references cross the wire), then each loop iteration demands that
/// file's attributes before printing them — forcing one flush per file.
///
/// **`2 + n` round trips** (array fetch, `n` per-iteration flushes, the
/// session release), against RMI's `1 + 4n` and BRMI's 1.
///
/// # Errors
///
/// Any remote failure from the listing or attribute calls.
pub fn implicit_listing(
    conn: &Connection,
    root: &RemoteRef,
) -> Result<Vec<ListingRow>, RemoteError> {
    let stub = DirectoryStub::new(RemoteRef::from_parts(conn.clone(), root.id()));
    let files = stub.list_files()?;
    let rt = ImplicitRuntime::new(conn.clone());
    let mut rows = Vec::with_capacity(files.len());
    for file in &files {
        let delayed: BRemoteFile = rt.stub(file.remote_ref());
        let name = rt.lazy(delayed.get_name());
        let is_directory = rt.lazy(delayed.is_directory());
        let last_modified = rt.lazy(delayed.last_modified());
        let length = rt.lazy(delayed.length());
        // The loop body "prints" the row: demanding `name` forces the
        // flush; the sibling attributes ride along in the same batch.
        rows.push(ListingRow {
            name: name.get()?,
            is_directory: is_directory.get()?,
            last_modified: last_modified.get()?,
            length: length.get()?,
        });
    }
    rt.finish()?;
    Ok(rows)
}

/// Directory listing as the *best case* an implicit optimizer could reach
/// by restructuring the loop (Yeung & Kelly): all attribute calls are
/// recorded before any value is consumed.
///
/// **3 round trips** (array fetch, one batched flush, session release) —
/// still short of BRMI's 1, because the array of remote references must
/// cross the wire and the optimizer cannot prove the flush final.
///
/// # Errors
///
/// Any remote failure from the listing or attribute calls.
pub fn implicit_listing_restructured(
    conn: &Connection,
    root: &RemoteRef,
) -> Result<Vec<ListingRow>, RemoteError> {
    let stub = DirectoryStub::new(RemoteRef::from_parts(conn.clone(), root.id()));
    let files = stub.list_files()?;
    let rt = ImplicitRuntime::new(conn.clone());
    let delayed: Vec<_> = files
        .iter()
        .map(|file| {
            let f: BRemoteFile = rt.stub(file.remote_ref());
            (
                rt.lazy(f.get_name()),
                rt.lazy(f.is_directory()),
                rt.lazy(f.last_modified()),
                rt.lazy(f.length()),
            )
        })
        .collect();
    let rows = delayed
        .into_iter()
        .map(|(name, is_directory, last_modified, length)| {
            Ok(ListingRow {
                name: name.get()?,
                is_directory: is_directory.get()?,
                last_modified: last_modified.get()?,
                length: length.get()?,
            })
        })
        .collect::<Result<Vec<_>, RemoteError>>()?;
    rt.finish()?;
    Ok(rows)
}

/// Per-file contents with per-file exception handling, under implicit
/// batching. The `match` on each file's outcome is an exception-handler
/// boundary, so the implicit analysis must flush before entering it
/// (Section 1 of the paper lists exception handling as a batching
/// blocker) — **`n + 1` round trips**.
///
/// Compare [`crate::fileserver::brmi_read_all_tolerant`], which keeps the
/// same per-file semantics in **one** round trip with a `Continue`
/// policy.
///
/// # Errors
///
/// Transport failures only; per-file failures come back as `Err` rows.
pub fn implicit_read_all_tolerant(
    conn: &Connection,
    root: &RemoteRef,
    names: &[String],
) -> Result<Vec<TolerantRead>, RemoteError> {
    let rt = ImplicitRuntime::new(conn.clone());
    let directory: BDirectory = rt.stub(root);
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let file = directory.get_file(name.clone());
        let contents = rt.lazy(file.read_contents());
        // Entering the handler forces the flush: the implicit system
        // must know this iteration's outcome before the catch block.
        rt.barrier()?;
        out.push((
            name.clone(),
            contents.get().map_err(|e| e.exception().to_owned()),
        ));
    }
    rt.finish()?;
    Ok(out)
}

/// Delete-files-older-than-cutoff under implicit batching: the natural
/// loop demands each file's date to decide, so every iteration flushes —
/// **`n + 2` round trips** against the explicit client's 2 (paper
/// Section 3.5).
///
/// Returns the names of the deleted files.
///
/// # Errors
///
/// Any remote failure.
pub fn implicit_delete_older_than(
    conn: &Connection,
    root: &RemoteRef,
    cutoff: DateMillis,
) -> Result<Vec<String>, RemoteError> {
    let stub = DirectoryStub::new(RemoteRef::from_parts(conn.clone(), root.id()));
    let files = stub.list_files()?;
    let rt = ImplicitRuntime::new(conn.clone());
    let mut deleted = Vec::new();
    for file in &files {
        let delayed: BRemoteFile = rt.stub(file.remote_ref());
        let date = rt.lazy(delayed.last_modified());
        let name = rt.lazy(delayed.get_name());
        if date.get()?.before(cutoff) {
            deleted.push(name.get()?);
            let _ = delayed.delete(); // delayed; ships with the next flush
        }
    }
    rt.finish()?;
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fileserver::{
        brmi_listing, brmi_read_all_tolerant, rmi_listing, DirectorySkeleton, InMemoryDirectory,
    };
    use crate::list::{ListNode, RemoteListSkeleton};
    use crate::noop::{NoopServer, NoopSkeleton};
    use crate::testkit::AppRig;

    #[test]
    fn implicit_noops_run_once_in_one_round_trip() {
        let server = NoopServer::new();
        let rig = AppRig::serve("noop", NoopSkeleton::remote_arc(server.clone()));
        rig.stats.reset();
        implicit_noops(&rig.conn, &rig.root, 7).unwrap();
        assert_eq!(server.calls(), 7);
        assert_eq!(rig.stats.requests(), 1, "straight-line code: one flush");
    }

    #[test]
    fn implicit_traversal_matches_rmi_and_costs_two_trips() {
        let rig = AppRig::serve(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(&[5, 6, 7, 8])),
        );
        rig.stats.reset();
        let value = implicit_nth_value(&rig.conn, &rig.root, 3).unwrap();
        assert_eq!(value, 8);
        assert_eq!(rig.stats.requests(), 2, "demand flush + session release");
    }

    #[test]
    fn implicit_traversal_past_tail_rethrows_at_demand() {
        let rig = AppRig::serve(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(&[1])),
        );
        let err = implicit_nth_value(&rig.conn, &rig.root, 3).unwrap_err();
        assert_eq!(err.exception(), "EndOfListException");
    }

    fn file_rig(count: usize) -> (AppRig, std::sync::Arc<InMemoryDirectory>) {
        let dir = InMemoryDirectory::new();
        dir.populate(count, 16);
        let rig = AppRig::serve("files", DirectorySkeleton::remote_arc(dir.clone()));
        (rig, dir)
    }

    #[test]
    fn implicit_listing_agrees_with_rmi_and_brmi() {
        let (rig, _dir) = file_rig(6);
        let rmi = rmi_listing(&DirectoryStub::new(rig.root.clone())).unwrap();
        let implicit = implicit_listing(&rig.conn, &rig.root).unwrap();
        let restructured = implicit_listing_restructured(&rig.conn, &rig.root).unwrap();
        let brmi = brmi_listing(&rig.conn, &rig.root).unwrap();
        assert_eq!(rmi, implicit);
        assert_eq!(rmi, restructured);
        assert_eq!(rmi, brmi);
    }

    #[test]
    fn implicit_listing_round_trips_sit_between_rmi_and_brmi() {
        let (rig, _dir) = file_rig(8);
        rig.stats.reset();
        implicit_listing(&rig.conn, &rig.root).unwrap();
        assert_eq!(rig.stats.requests(), 2 + 8, "1 fetch + n demands + release");

        rig.stats.reset();
        implicit_listing_restructured(&rig.conn, &rig.root).unwrap();
        assert_eq!(rig.stats.requests(), 3, "fetch + one flush + release");
    }

    #[test]
    fn fine_grained_handlers_force_per_call_flushes() {
        let (rig, _dir) = file_rig(4);
        let mut names: Vec<String> = (0..4).map(|i| format!("file{i}")).collect();
        names.insert(2, "missing".to_owned());

        rig.stats.reset();
        let implicit = implicit_read_all_tolerant(&rig.conn, &rig.root, &names).unwrap();
        assert_eq!(rig.stats.requests(), names.len() as u64 + 1);

        rig.stats.reset();
        let explicit = brmi_read_all_tolerant(&rig.conn, &rig.root, &names).unwrap();
        assert_eq!(rig.stats.requests(), 1, "Continue policy: one round trip");

        assert_eq!(implicit, explicit);
        assert_eq!(
            implicit[2].1,
            Err("FileNotFoundException".to_owned()),
            "the missing file fails without affecting its neighbours"
        );
        assert!(implicit[3].1.is_ok());
    }

    #[test]
    fn implicit_delete_agrees_with_explicit_but_pays_per_file() {
        let (rig_a, dir_a) = file_rig(6);
        let (rig_b, dir_b) = file_rig(6);
        rig_a.stats.reset();
        let implicit =
            implicit_delete_older_than(&rig_a.conn, &rig_a.root, DateMillis(3_000)).unwrap();
        assert_eq!(rig_a.stats.requests(), 6 + 2);
        let explicit =
            crate::fileserver::brmi_delete_older_than(&rig_b.conn, &rig_b.root, DateMillis(3_000))
                .unwrap();
        assert_eq!(implicit, explicit);
        assert_eq!(dir_a.names(), dir_b.names());
    }

    #[test]
    fn empty_listing_is_harmless() {
        let (rig, _dir) = file_rig(0);
        let rows = implicit_listing(&rig.conn, &rig.root).unwrap();
        assert!(rows.is_empty());
    }
}
