//! The Translator case study (paper Section 5.1): a word-translation
//! service built for one request at a time, batched by the client without
//! any server change. Words travel as serializable records, exercising
//! by-copy semantics for application types.

use std::collections::HashMap;
use std::sync::Arc;

use brmi::policy::ContinuePolicy;
use brmi::{remote_interface, Batch, BatchFuture};
use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::{FromValue, RemoteError, RemoteErrorKind, ToValue, Value};

/// A word tagged with its language — the paper's serializable `Word`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Word {
    /// The text.
    pub text: String,
    /// ISO-ish language code, e.g. `"en"`.
    pub lang: String,
}

impl Word {
    /// Convenience constructor.
    pub fn new(text: &str, lang: &str) -> Self {
        Word {
            text: text.to_owned(),
            lang: lang.to_owned(),
        }
    }
}

impl ToValue for Word {
    fn to_value(&self) -> Value {
        Value::Record(vec![
            ("text".to_owned(), Value::Str(self.text.clone())),
            ("lang".to_owned(), Value::Str(self.lang.clone())),
        ])
    }
}

impl FromValue for Word {
    fn from_value(value: Value) -> Result<Self, RemoteError> {
        let fields = value.into_record()?;
        let mut text = None;
        let mut lang = None;
        for (name, value) in fields {
            match name.as_str() {
                "text" => text = Some(String::from_value(value)?),
                "lang" => lang = Some(String::from_value(value)?),
                _ => {}
            }
        }
        match (text, lang) {
            (Some(text), Some(lang)) => Ok(Word { text, lang }),
            _ => Err(RemoteError::new(
                RemoteErrorKind::BadArguments,
                "word record requires text and lang fields",
            )),
        }
    }
}

remote_interface! {
    /// The translation service (the paper's `Translator`).
    pub interface Translator {
        /// Translates one word; throws `UnknownWordException` for words
        /// outside the dictionary.
        fn translate(word: Word) -> Word;
        /// The language this service translates into.
        fn target_language() -> String;
    }
}

/// A dictionary-backed translator.
pub struct DictionaryTranslator {
    target: String,
    entries: HashMap<String, String>,
}

impl DictionaryTranslator {
    /// An English→French sample dictionary.
    pub fn english_to_french() -> Arc<Self> {
        let entries = [
            ("hello", "bonjour"),
            ("world", "monde"),
            ("cat", "chat"),
            ("dog", "chien"),
            ("file", "fichier"),
            ("server", "serveur"),
            ("network", "réseau"),
            ("latency", "latence"),
            ("batch", "lot"),
            ("future", "futur"),
        ]
        .into_iter()
        .map(|(en, fr)| (en.to_owned(), fr.to_owned()))
        .collect();
        Arc::new(DictionaryTranslator {
            target: "fr".to_owned(),
            entries,
        })
    }

    /// Every word the dictionary knows, for workload generation.
    pub fn known_words(&self) -> Vec<String> {
        let mut words: Vec<String> = self.entries.keys().cloned().collect();
        words.sort();
        words
    }
}

impl Translator for DictionaryTranslator {
    fn translate(&self, word: Word) -> Result<Word, RemoteError> {
        match self.entries.get(&word.text) {
            Some(translated) => Ok(Word {
                text: translated.clone(),
                lang: self.target.clone(),
            }),
            None => Err(RemoteError::application(
                "UnknownWordException",
                format!("no translation for {:?}", word.text),
            )),
        }
    }

    fn target_language(&self) -> Result<String, RemoteError> {
        Ok(self.target.clone())
    }
}

/// RMI client: one round trip per word.
///
/// # Errors
///
/// Never fails as a whole; per-word failures are reported in-line, to
/// match the batched client's behaviour.
pub fn rmi_translate_all(
    translator: &TranslatorStub,
    words: &[Word],
) -> Result<Vec<Result<Word, String>>, RemoteError> {
    Ok(words
        .iter()
        .map(|word| {
            translator
                .translate(word.clone())
                .map_err(|err| err.exception().to_owned())
        })
        .collect())
}

/// BRMI client (Section 5.1): the batch size is decided *at runtime* from
/// the input length — a dynamic array of futures, one round trip total.
///
/// # Errors
///
/// Communication failures at `flush`.
pub fn brmi_translate_all(
    conn: &Connection,
    translator_ref: &RemoteRef,
    words: &[Word],
) -> Result<Vec<Result<Word, String>>, RemoteError> {
    let batch = Batch::new(conn.clone(), ContinuePolicy);
    let translator = BTranslator::new(&batch, translator_ref);
    let futures: Vec<BatchFuture<Word>> = words
        .iter()
        .map(|word| translator.translate(word.clone()))
        .collect();
    batch.flush()?;
    Ok(futures
        .into_iter()
        .map(|future| future.get().map_err(|err| err.exception().to_owned()))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::AppRig;

    fn rig() -> (AppRig, Arc<DictionaryTranslator>) {
        let translator = DictionaryTranslator::english_to_french();
        let rig = AppRig::serve(
            "translator",
            TranslatorSkeleton::remote_arc(translator.clone()),
        );
        (rig, translator)
    }

    #[test]
    fn word_round_trips_as_record() {
        let word = Word::new("hello", "en");
        assert_eq!(Word::from_value(word.to_value()).unwrap(), word);
        let err = Word::from_value(Value::Record(vec![])).unwrap_err();
        assert_eq!(err.kind(), RemoteErrorKind::BadArguments);
    }

    #[test]
    fn translations_agree_between_rmi_and_brmi() {
        let (rig, _t) = rig();
        let words: Vec<Word> = ["hello", "world", "xyzzy", "batch"]
            .iter()
            .map(|w| Word::new(w, "en"))
            .collect();
        let rmi = rmi_translate_all(&TranslatorStub::new(rig.root.clone()), &words).unwrap();
        let brmi = brmi_translate_all(&rig.conn, &rig.root, &words).unwrap();
        assert_eq!(rmi, brmi);
        assert_eq!(rmi[0], Ok(Word::new("bonjour", "fr")));
        assert_eq!(rmi[2], Err("UnknownWordException".to_owned()));
    }

    #[test]
    fn batch_size_follows_input_length() {
        let (rig, translator) = rig();
        for n in [0usize, 1, 5, 10] {
            let words: Vec<Word> = translator
                .known_words()
                .into_iter()
                .cycle()
                .take(n)
                .map(|w| Word::new(&w, "en"))
                .collect();
            rig.stats.reset();
            let out = brmi_translate_all(&rig.conn, &rig.root, &words).unwrap();
            assert_eq!(out.len(), n);
            assert_eq!(rig.stats.requests(), u64::from(n > 0));
        }
    }

    #[test]
    fn rmi_cost_grows_linearly() {
        let (rig, _t) = rig();
        let words: Vec<Word> = (0..7).map(|_| Word::new("cat", "en")).collect();
        rig.stats.reset();
        rmi_translate_all(&TranslatorStub::new(rig.root.clone()), &words).unwrap();
        assert_eq!(rig.stats.requests(), 7);
    }
}
