//! The Remote File Server — the paper's running example (Sections 3 and
//! 5.1) and its macro benchmark (Section 5.4).
//!
//! A server exposes a hierarchical view of an in-memory filesystem through
//! the `Directory`/`RemoteFile` interfaces; clients list files, read
//! attributes, fetch contents and delete by date — each written twice, as
//! a plain RMI client and as a BRMI client with identical observable
//! behaviour.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use brmi::policy::AbortPolicy;
use brmi::{remote_interface, Batch, BatchFuture};
use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::{DateMillis, RemoteError};
use parking_lot::RwLock;

remote_interface! {
    /// A file in the remote filesystem (the paper's `RemoteFile`).
    pub interface RemoteFile {
        /// The file's name.
        #[read_only]
        fn get_name() -> String;
        /// True for directories.
        #[read_only]
        fn is_directory() -> bool;
        /// Last-modified timestamp.
        #[read_only]
        fn last_modified() -> DateMillis;
        /// Size in bytes.
        #[read_only]
        fn length() -> i64;
        /// The file contents (the macro benchmark's transfer payload).
        /// `delete()` targets the same object, so per-object invalidation
        /// keeps cached contents honest.
        #[read_only]
        fn read_contents() -> Vec<u8>;
        /// Removes the file from its directory.
        fn delete();
    }
}

remote_interface! {
    /// A directory of remote files (the paper's `Directory`).
    pub interface Directory {
        /// Looks up one file by name.
        #[read_only]
        fn get_file(name: String) -> remote RemoteFile;
        /// Lists every file — the cursor source of the running example.
        #[read_only]
        fn list_files() -> remote_array RemoteFile;
        /// Number of entries.
        ///
        /// Deliberately NOT `#[read_only]`: the entry list is also
        /// mutated through sibling objects (`RemoteFile::delete` edits
        /// its parent), which per-object invalidation cannot see — a
        /// cached count would survive such deletes for a whole TTL.
        fn file_count() -> i32;
        /// Stores a copy of `file` (name, date and contents) in this
        /// directory — the receiving end of the paper's copy-between-
        /// folders cursor scenario (Section 3.4).
        fn add_file_copy(file: remote RemoteFile);
    }
}

/// In-memory file entry backing the service.
pub struct FsFile {
    name: String,
    modified: DateMillis,
    data: RwLock<Vec<u8>>,
    deleted: AtomicBool,
    parent: Weak<InMemoryDirectory>,
}

impl RemoteFile for FsFile {
    fn get_name(&self) -> Result<String, RemoteError> {
        Ok(self.name.clone())
    }

    fn is_directory(&self) -> Result<bool, RemoteError> {
        Ok(false)
    }

    fn last_modified(&self) -> Result<DateMillis, RemoteError> {
        Ok(self.modified)
    }

    fn length(&self) -> Result<i64, RemoteError> {
        Ok(self.data.read().len() as i64)
    }

    fn read_contents(&self) -> Result<Vec<u8>, RemoteError> {
        if self.deleted.load(Ordering::Relaxed) {
            return Err(RemoteError::application(
                "FileNotFoundException",
                format!("file was deleted: {}", self.name),
            ));
        }
        Ok(self.data.read().clone())
    }

    fn delete(&self) -> Result<(), RemoteError> {
        self.deleted.store(true, Ordering::Relaxed);
        if let Some(parent) = self.parent.upgrade() {
            parent
                .entries
                .write()
                .retain(|entry| entry.name != self.name);
        }
        Ok(())
    }
}

/// An in-memory directory service.
pub struct InMemoryDirectory {
    entries: RwLock<Vec<Arc<FsFile>>>,
    weak_self: Weak<InMemoryDirectory>,
}

impl InMemoryDirectory {
    /// Creates an empty directory.
    pub fn new() -> Arc<Self> {
        Arc::new_cyclic(|weak_self| InMemoryDirectory {
            entries: RwLock::new(Vec::new()),
            weak_self: Weak::clone(weak_self),
        })
    }

    /// Adds a file with the given attributes; returns the entry.
    pub fn add_file(
        self: &Arc<Self>,
        name: &str,
        modified: DateMillis,
        data: Vec<u8>,
    ) -> Arc<FsFile> {
        let file = Arc::new(FsFile {
            name: name.to_owned(),
            modified,
            data: RwLock::new(data),
            deleted: AtomicBool::new(false),
            parent: Arc::downgrade(self),
        });
        self.entries.write().push(Arc::clone(&file));
        file
    }

    /// Populates the paper's macro-benchmark workload: `count` files of
    /// `size` bytes each, named `file0..`, held in memory so disk access
    /// cannot taint measurements (Section 5.4).
    pub fn populate(self: &Arc<Self>, count: usize, size: usize) {
        for i in 0..count {
            self.add_file(
                &format!("file{i}"),
                DateMillis(1_000 * i as i64),
                vec![(i % 251) as u8; size],
            );
        }
    }

    /// Names of the live entries.
    pub fn names(&self) -> Vec<String> {
        self.entries.read().iter().map(|f| f.name.clone()).collect()
    }
}

impl Directory for InMemoryDirectory {
    fn get_file(&self, name: String) -> Result<Arc<dyn RemoteFile>, RemoteError> {
        self.entries
            .read()
            .iter()
            .find(|entry| entry.name == name)
            .cloned()
            .map(|entry| entry as Arc<dyn RemoteFile>)
            .ok_or_else(|| {
                RemoteError::application("FileNotFoundException", format!("no such file: {name}"))
            })
    }

    fn list_files(&self) -> Result<Vec<Arc<dyn RemoteFile>>, RemoteError> {
        Ok(self
            .entries
            .read()
            .iter()
            .cloned()
            .map(|entry| entry as Arc<dyn RemoteFile>)
            .collect())
    }

    fn file_count(&self) -> Result<i32, RemoteError> {
        Ok(self.entries.read().len() as i32)
    }

    fn add_file_copy(&self, file: Arc<dyn RemoteFile>) -> Result<(), RemoteError> {
        // Under BRMI `file` is the actual source object (local calls);
        // under RMI it is a loopback proxy re-entering the middleware.
        let name = file.get_name()?;
        let modified = file.last_modified()?;
        let data = file.read_contents()?;
        let copy = Arc::new(FsFile {
            name,
            modified,
            data: RwLock::new(data),
            deleted: AtomicBool::new(false),
            parent: Weak::clone(&self.weak_self),
        });
        self.entries.write().push(copy);
        Ok(())
    }
}

/// One row of a directory listing, as printed by the paper's client.
///
/// Also acts as a Data Transfer Object for the hand-optimized
/// [`DirectoryFacade`] baseline — it marshals like a Java `Serializable`
/// value class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListingRow {
    /// File name.
    pub name: String,
    /// True for directories.
    pub is_directory: bool,
    /// Last-modified timestamp.
    pub last_modified: DateMillis,
    /// File length in bytes.
    pub length: i64,
}

impl brmi_wire::ToValue for ListingRow {
    fn to_value(&self) -> brmi_wire::Value {
        brmi_wire::Value::List(vec![
            brmi_wire::ToValue::to_value(&self.name),
            brmi_wire::ToValue::to_value(&self.is_directory),
            brmi_wire::ToValue::to_value(&self.last_modified),
            brmi_wire::ToValue::to_value(&self.length),
        ])
    }

    fn into_value(self) -> brmi_wire::Value {
        brmi_wire::Value::List(vec![
            brmi_wire::ToValue::into_value(self.name),
            brmi_wire::ToValue::to_value(&self.is_directory),
            brmi_wire::ToValue::to_value(&self.last_modified),
            brmi_wire::ToValue::to_value(&self.length),
        ])
    }
}

impl brmi_wire::FromValue for ListingRow {
    fn from_value(value: brmi_wire::Value) -> Result<Self, RemoteError> {
        let items = value.into_list()?;
        let mut items = items.into_iter();
        let mut next = |what: &str| {
            items
                .next()
                .ok_or_else(|| RemoteError::marshal(format!("listing row missing field: {what}")))
        };
        Ok(ListingRow {
            name: brmi_wire::FromValue::from_value(next("name")?)?,
            is_directory: brmi_wire::FromValue::from_value(next("is_directory")?)?,
            last_modified: brmi_wire::FromValue::from_value(next("last_modified")?)?,
            length: brmi_wire::FromValue::from_value(next("length")?)?,
        })
    }
}

remote_interface! {
    /// The hand-optimized **Remote Facade** over a directory — the Data
    /// Transfer Object pattern of the paper's related work (Fowler;
    /// Alur's Value Objects). One purpose-built method per client access
    /// pattern returns everything in a single serializable value.
    ///
    /// This is the design BRMI renders unnecessary: it matches BRMI's
    /// round-trip count, but only by changing the *server* for each
    /// client pattern, which is exactly the maintenance burden the paper
    /// opens with. The `dto_facade` benchmark compares the two.
    pub interface DirectoryFacade {
        /// Every file's attributes in one round trip.
        ///
        /// NOT `#[read_only]`: the facade aggregates state owned by the
        /// directory and its files, so writes land on *other* objects
        /// (`RemoteFile::delete`, `Directory::add_file_copy`) and would
        /// never invalidate entries cached under the facade's id.
        fn listing_dto() -> Vec<ListingRow>;
        /// Named files' contents in one round trip. NOT `#[read_only]`
        /// for the same aliasing reason as `listing_dto`.
        fn fetch_dto(names: Vec<String>) -> Vec<(String, Vec<u8>)>;
    }
}

/// Facade implementation wrapping the plain directory service.
pub struct FacadeServer {
    directory: Arc<InMemoryDirectory>,
}

impl FacadeServer {
    /// Wraps `directory`.
    pub fn new(directory: Arc<InMemoryDirectory>) -> Arc<Self> {
        Arc::new(FacadeServer { directory })
    }
}

impl DirectoryFacade for FacadeServer {
    fn listing_dto(&self) -> Result<Vec<ListingRow>, RemoteError> {
        let files = self.directory.list_files()?;
        files
            .iter()
            .map(|file| {
                Ok(ListingRow {
                    name: file.get_name()?,
                    is_directory: file.is_directory()?,
                    last_modified: file.last_modified()?,
                    length: file.length()?,
                })
            })
            .collect()
    }

    fn fetch_dto(&self, names: Vec<String>) -> Result<Vec<(String, Vec<u8>)>, RemoteError> {
        names
            .into_iter()
            .map(|name| {
                let file = self.directory.get_file(name.clone())?;
                Ok((name, file.read_contents()?))
            })
            .collect()
    }
}

/// Listing through the hand-written facade: one round trip, like BRMI —
/// but only because the server was rewritten for this client.
///
/// # Errors
///
/// Any remote failure.
pub fn dto_listing(facade: &DirectoryFacadeStub) -> Result<Vec<ListingRow>, RemoteError> {
    facade.listing_dto()
}

/// Bulk fetch through the hand-written facade: one round trip.
///
/// # Errors
///
/// Any remote failure (one missing file fails the whole call — the DTO
/// pattern has no per-item exception story).
pub fn dto_fetch(
    facade: &DirectoryFacadeStub,
    names: &[String],
) -> Result<Vec<(String, Vec<u8>)>, RemoteError> {
    facade.fetch_dto(names.to_vec())
}

/// RMI listing client (Section 5.1): `1 + 4n` remote calls.
///
/// # Errors
///
/// Any remote failure from the listing or attribute calls.
pub fn rmi_listing(root: &DirectoryStub) -> Result<Vec<ListingRow>, RemoteError> {
    let files = root.list_files()?;
    let mut rows = Vec::with_capacity(files.len());
    for file in &files {
        rows.push(ListingRow {
            name: file.get_name()?,
            is_directory: file.is_directory()?,
            last_modified: file.last_modified()?,
            length: file.length()?,
        });
    }
    Ok(rows)
}

/// BRMI listing client (Section 5.1): a single remote call via a cursor.
///
/// # Errors
///
/// Communication failures at `flush`, or remote failures via the futures.
pub fn brmi_listing(conn: &Connection, root: &RemoteRef) -> Result<Vec<ListingRow>, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let directory = BDirectory::new(&batch, root);
    let cursor = directory.list_files();
    let name = cursor.get_name();
    let is_directory = cursor.is_directory();
    let last_modified = cursor.last_modified();
    let length = cursor.length();
    batch.flush()?;

    let mut rows = Vec::new();
    while cursor.advance() {
        rows.push(ListingRow {
            name: name.get()?,
            is_directory: is_directory.get()?,
            last_modified: last_modified.get()?,
            length: length.get()?,
        });
    }
    Ok(rows)
}

/// RMI transfer client (Section 5.4): fetch `names` by name and read each
/// one's contents — `2n` remote calls.
///
/// # Errors
///
/// Lookup or read failures.
pub fn rmi_fetch(
    root: &DirectoryStub,
    names: &[String],
) -> Result<Vec<(String, Vec<u8>)>, RemoteError> {
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let file = root.get_file(name.clone())?;
        out.push((name.clone(), file.read_contents()?));
    }
    Ok(out)
}

/// BRMI transfer client (Section 5.4): the same fetch in one round trip.
///
/// # Errors
///
/// Communication failures at `flush`, or per-file failures via the futures.
pub fn brmi_fetch(
    conn: &Connection,
    root: &RemoteRef,
    names: &[String],
) -> Result<Vec<(String, Vec<u8>)>, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let directory = BDirectory::new(&batch, root);
    let futures: Vec<(String, BatchFuture<Vec<u8>>)> = names
        .iter()
        .map(|name| {
            let file = directory.get_file(name.clone());
            (name.clone(), file.read_contents())
        })
        .collect();
    batch.flush()?;
    futures
        .into_iter()
        .map(|(name, contents)| Ok((name, contents.get()?)))
        .collect()
}

/// Per-file outcome of a tolerant bulk read: the contents, or the name
/// of the remote exception that file raised.
pub type TolerantRead = (String, Result<Vec<u8>, String>);

/// BRMI per-file contents with per-file error reporting in **one** round
/// trip: the `Continue` policy lets each file fail independently, and the
/// exception handling happens after `flush`, when the futures are
/// accessed (paper Section 3.3).
///
/// Returns one entry per name: the contents, or the remote exception's
/// name. Compare [`crate::implicit_clients::implicit_read_all_tolerant`],
/// which needs a round trip per file to keep the same semantics.
///
/// # Errors
///
/// Communication failures at `flush` only.
pub fn brmi_read_all_tolerant(
    conn: &Connection,
    root: &RemoteRef,
    names: &[String],
) -> Result<Vec<TolerantRead>, RemoteError> {
    let batch = Batch::new(conn.clone(), brmi::policy::ContinuePolicy);
    let directory = BDirectory::new(&batch, root);
    let futures: Vec<(String, BatchFuture<Vec<u8>>)> = names
        .iter()
        .map(|name| {
            let file = directory.get_file(name.clone());
            (name.clone(), file.read_contents())
        })
        .collect();
    batch.flush()?;
    Ok(futures
        .into_iter()
        .map(|(name, contents)| (name, contents.get().map_err(|e| e.exception().to_owned())))
        .collect())
}

/// BRMI "delete files older than a cutoff" (Section 3.5): exactly two
/// batches — one to read dates, one to delete the selected elements.
///
/// Returns the names of the deleted files.
///
/// # Errors
///
/// Communication failures at either flush.
pub fn brmi_delete_older_than(
    conn: &Connection,
    root: &RemoteRef,
    cutoff: DateMillis,
) -> Result<Vec<String>, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let directory = BDirectory::new(&batch, root);
    let cursor = directory.list_files();
    let date = cursor.last_modified();
    let name = cursor.get_name();
    batch.flush_and_continue()?;

    let mut deleted = Vec::new();
    while cursor.advance() {
        if date.get()?.before(cutoff) {
            deleted.push(name.get()?);
            cursor.delete();
        }
    }
    batch.flush()?;
    Ok(deleted)
}

/// RMI equivalent of [`brmi_delete_older_than`], for differential tests:
/// `1 + 2n + deletions` remote calls.
///
/// # Errors
///
/// Any remote failure.
pub fn rmi_delete_older_than(
    root: &DirectoryStub,
    cutoff: DateMillis,
) -> Result<Vec<String>, RemoteError> {
    let files = root.list_files()?;
    let mut deleted = Vec::new();
    for file in &files {
        if file.last_modified()?.before(cutoff) {
            deleted.push(file.get_name()?);
            file.delete()?;
        }
    }
    Ok(deleted)
}

/// BRMI folder copy (Section 3.4: "it would be possible to copy all files
/// from one folder to another using cursors"): one batch, where the
/// cursor over the source directory is the *argument* of calls on the
/// destination directory.
///
/// # Errors
///
/// Communication failures at `flush`; per-file failures via `ok()`.
pub fn brmi_copy_all(
    conn: &Connection,
    src: &RemoteRef,
    dst: &RemoteRef,
) -> Result<u32, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let source = BDirectory::new(&batch, src);
    let destination = BDirectory::new(&batch, dst);
    let cursor = source.list_files();
    destination.add_file_copy(&cursor);
    batch.flush()?;
    cursor.ok()?;
    Ok(cursor.element_count().unwrap_or(0))
}

/// RMI folder copy, for differential tests: `1 + n` calls, plus three
/// loopback calls per file on the server (the marshalled source stubs).
///
/// # Errors
///
/// Any remote failure.
pub fn rmi_copy_all(src: &DirectoryStub, dst: &DirectoryStub) -> Result<u32, RemoteError> {
    let files = src.list_files()?;
    for file in &files {
        dst.add_file_copy(file)?;
    }
    Ok(files.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::AppRig;

    fn rig(count: usize, size: usize) -> (AppRig, Arc<InMemoryDirectory>) {
        let dir = InMemoryDirectory::new();
        dir.populate(count, size);
        let rig = AppRig::serve("files", DirectorySkeleton::remote_arc(dir.clone()));
        (rig, dir)
    }

    #[test]
    fn listings_agree_between_rmi_and_brmi() {
        let (rig, _dir) = rig(10, 64);
        let rmi = rmi_listing(&DirectoryStub::new(rig.root.clone())).unwrap();
        let brmi = brmi_listing(&rig.conn, &rig.root).unwrap();
        assert_eq!(rmi.len(), 10);
        assert_eq!(rmi, brmi);
    }

    #[test]
    fn listing_round_trip_counts_match_the_paper() {
        let (rig, _dir) = rig(10, 16);
        rig.stats.reset();
        rmi_listing(&DirectoryStub::new(rig.root.clone())).unwrap();
        assert_eq!(rig.stats.requests(), 1 + 4 * 10, "RMI: 1 + 4n calls");
        rig.stats.reset();
        brmi_listing(&rig.conn, &rig.root).unwrap();
        assert_eq!(rig.stats.requests(), 1, "BRMI: one call");
    }

    #[test]
    fn fetch_transfers_identical_bytes() {
        let (rig, dir) = rig(5, 1000);
        let names = dir.names();
        let rmi = rmi_fetch(&DirectoryStub::new(rig.root.clone()), &names).unwrap();
        let brmi = brmi_fetch(&rig.conn, &rig.root, &names).unwrap();
        assert_eq!(rmi, brmi);
        assert_eq!(rmi[0].1.len(), 1000);
    }

    #[test]
    fn fetch_missing_file_fails_identically() {
        let (rig, _dir) = rig(2, 10);
        let names = vec!["nope".to_owned()];
        let rmi_err = rmi_fetch(&DirectoryStub::new(rig.root.clone()), &names).unwrap_err();
        let brmi_err = brmi_fetch(&rig.conn, &rig.root, &names).unwrap_err();
        assert_eq!(rmi_err.exception(), "FileNotFoundException");
        assert_eq!(brmi_err.exception(), rmi_err.exception());
    }

    #[test]
    fn delete_older_than_needs_exactly_two_batches() {
        let (rig, dir) = rig(6, 8); // modified = 0,1000,...,5000
        rig.stats.reset();
        let deleted = brmi_delete_older_than(&rig.conn, &rig.root, DateMillis(3_000)).unwrap();
        assert_eq!(rig.stats.requests(), 2, "two batches (paper §3.5)");
        assert_eq!(deleted, vec!["file0", "file1", "file2"]);
        assert_eq!(dir.names(), vec!["file3", "file4", "file5"]);
    }

    #[test]
    fn delete_older_than_agrees_with_rmi() {
        let (rig_a, dir_a) = rig(6, 8);
        let (rig_b, dir_b) = rig(6, 8);
        let rmi = rmi_delete_older_than(&DirectoryStub::new(rig_a.root.clone()), DateMillis(2_500))
            .unwrap();
        let brmi = brmi_delete_older_than(&rig_b.conn, &rig_b.root, DateMillis(2_500)).unwrap();
        assert_eq!(rmi, brmi);
        assert_eq!(dir_a.names(), dir_b.names());
    }

    #[test]
    fn get_file_then_attributes_is_three_calls_rmi_one_call_brmi() {
        // The paper's opening example (Section 3.1).
        let (rig, _dir) = rig(3, 10);
        rig.stats.reset();
        let stub = DirectoryStub::new(rig.root.clone());
        let index = stub.get_file("file1".into()).unwrap();
        let _name = index.get_name().unwrap();
        let _size = index.length().unwrap();
        assert_eq!(rig.stats.requests(), 3);

        rig.stats.reset();
        let batch = Batch::new(rig.conn.clone(), AbortPolicy);
        let root = BDirectory::new(&batch, &rig.root);
        let index = root.get_file("file1".into());
        let name = index.get_name();
        let size = index.length();
        batch.flush().unwrap();
        assert_eq!(rig.stats.requests(), 1);
        assert_eq!(name.get().unwrap(), "file1");
        assert_eq!(size.get().unwrap(), 10);
    }

    #[test]
    fn folder_copy_via_cursor_is_one_round_trip_with_no_loopback() {
        let (rig, src_dir) = rig(4, 32);
        let dst_dir = InMemoryDirectory::new();
        let dst_ref = rig.conn.reference(
            rig.server
                .export(DirectorySkeleton::remote_arc(dst_dir.clone())),
        );

        rig.stats.reset();
        let copied = brmi_copy_all(&rig.conn, &rig.root, &dst_ref).unwrap();
        assert_eq!(copied, 4);
        assert_eq!(rig.stats.requests(), 1, "whole folder copy in one batch");
        assert_eq!(dst_dir.names(), src_dir.names());
        assert_eq!(
            rig.server.loopback_calls(),
            0,
            "BRMI hands the destination the actual source files"
        );
    }

    #[test]
    fn folder_copy_rmi_pays_loopback_per_file() {
        let (rig, src_dir) = rig(4, 32);
        let dst_dir = InMemoryDirectory::new();
        let dst_ref = rig.conn.reference(
            rig.server
                .export(DirectorySkeleton::remote_arc(dst_dir.clone())),
        );
        let copied = rmi_copy_all(
            &DirectoryStub::new(rig.root.clone()),
            &DirectoryStub::new(dst_ref),
        )
        .unwrap();
        assert_eq!(copied, 4);
        assert_eq!(dst_dir.names(), src_dir.names());
        assert_eq!(
            rig.server.loopback_calls(),
            3 * 4,
            "name + date + contents per file re-enter the middleware"
        );
    }

    #[test]
    fn copied_files_preserve_contents_and_dates() {
        let (rig, _src) = rig(3, 64);
        let dst_dir = InMemoryDirectory::new();
        let dst_ref = rig.conn.reference(
            rig.server
                .export(DirectorySkeleton::remote_arc(dst_dir.clone())),
        );
        brmi_copy_all(&rig.conn, &rig.root, &dst_ref).unwrap();
        let src_rows = brmi_listing(&rig.conn, &rig.root).unwrap();
        let dst_rows = {
            let batch = Batch::new(rig.conn.clone(), AbortPolicy);
            let d = BDirectory::new(&batch, &dst_ref);
            let cursor = d.list_files();
            let name = cursor.get_name();
            let modified = cursor.last_modified();
            let length = cursor.length();
            batch.flush().unwrap();
            let mut rows = Vec::new();
            while cursor.advance() {
                rows.push(ListingRow {
                    name: name.get().unwrap(),
                    is_directory: false,
                    last_modified: modified.get().unwrap(),
                    length: length.get().unwrap(),
                });
            }
            rows
        };
        assert_eq!(src_rows, dst_rows);
    }

    #[test]
    fn dto_facade_matches_brmi_listing_in_one_round_trip() {
        let (rig, dir) = rig(7, 32);
        let facade_ref = rig.conn.reference(
            rig.server
                .export(DirectoryFacadeSkeleton::remote_arc(FacadeServer::new(dir))),
        );
        rig.stats.reset();
        let dto = dto_listing(&DirectoryFacadeStub::new(facade_ref)).unwrap();
        assert_eq!(rig.stats.requests(), 1, "facade: one purpose-built call");
        let brmi = brmi_listing(&rig.conn, &rig.root).unwrap();
        assert_eq!(dto, brmi);
    }

    #[test]
    fn dto_fetch_matches_brmi_but_fails_wholesale_on_missing_files() {
        let (rig, dir) = rig(4, 100);
        let names = dir.names();
        let facade_ref = rig.conn.reference(
            rig.server
                .export(DirectoryFacadeSkeleton::remote_arc(FacadeServer::new(dir))),
        );
        let facade = DirectoryFacadeStub::new(facade_ref);
        let dto = dto_fetch(&facade, &names).unwrap();
        let brmi = brmi_fetch(&rig.conn, &rig.root, &names).unwrap();
        assert_eq!(dto, brmi);

        // One bad name sinks the whole DTO call; BRMI's Continue policy
        // reports per-file outcomes instead.
        let mut with_bad = names.clone();
        with_bad.push("missing".to_owned());
        let err = dto_fetch(&facade, &with_bad).unwrap_err();
        assert_eq!(err.exception(), "FileNotFoundException");
        let tolerant = brmi_read_all_tolerant(&rig.conn, &rig.root, &with_bad).unwrap();
        assert_eq!(tolerant.len(), 5);
        assert!(tolerant[..4].iter().all(|(_, r)| r.is_ok()));
        assert!(tolerant[4].1.is_err());
    }

    #[test]
    fn listing_row_round_trips_through_the_value_model() {
        use brmi_wire::{FromValue, ToValue};
        let row = ListingRow {
            name: "a.txt".into(),
            is_directory: false,
            last_modified: DateMillis(123_456),
            length: 789,
        };
        let back = ListingRow::from_value(row.to_value()).unwrap();
        assert_eq!(row, back);
        let err = ListingRow::from_value(brmi_wire::Value::I32(3)).unwrap_err();
        assert_eq!(err.kind(), brmi_wire::RemoteErrorKind::BadArguments);
    }

    #[test]
    fn deleted_file_read_fails() {
        let (rig, dir) = rig(1, 4);
        let file = dir.entries.read()[0].clone();
        let stub = DirectoryStub::new(rig.root.clone());
        let remote = stub.get_file("file0".into()).unwrap();
        remote.delete().unwrap();
        assert!(file.deleted.load(Ordering::Relaxed));
        let err = remote.read_contents().unwrap_err();
        assert_eq!(err.exception(), "FileNotFoundException");
    }
}
