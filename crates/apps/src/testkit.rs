//! Test/bench rig shared by all case-study applications: a server with
//! batching installed, an in-process transport with traffic counters, and
//! a connection with the application root looked up.

use std::sync::Arc;

use brmi::BatchExecutor;
use brmi_rmi::{Connection, RemoteObject, RemoteRef, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::TransportStats;

/// A ready-to-use client/server pair over an in-process transport.
pub struct AppRig {
    /// The server (batching installed).
    pub server: Arc<RmiServer>,
    /// The batch executor, for session introspection.
    pub executor: Arc<BatchExecutor>,
    /// Client connection.
    pub conn: Connection,
    /// Reference to the exported application root.
    pub root: RemoteRef,
    /// Round-trip counters for the transport.
    pub stats: Arc<TransportStats>,
}

impl AppRig {
    /// Exports `root` under `name` and connects a client to it.
    ///
    /// # Panics
    ///
    /// Panics when the bind fails (name collision), which cannot happen on
    /// a fresh server.
    pub fn serve(name: &str, root: Arc<dyn RemoteObject>) -> AppRig {
        let server = RmiServer::new();
        let executor = BatchExecutor::install(&server);
        let id = server.bind(name, root).expect("fresh server bind");
        let transport = InProcTransport::new(server.clone());
        let stats = transport.stats();
        let conn = Connection::new(Arc::new(transport));
        let root = conn.reference(id);
        AppRig {
            server,
            executor,
            conn,
            root,
            stats,
        }
    }
}

impl std::fmt::Debug for AppRig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppRig")
            .field("requests", &self.stats.requests())
            .finish_non_exhaustive()
    }
}
