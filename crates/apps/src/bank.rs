//! The Bank case study (paper Section 5.1): a credit-card management
//! system whose BRMI client folds account lookup, purchases and a balance
//! query into one batch, using a custom exception policy to abort only
//! when the lookup itself fails.

use std::collections::HashMap;
use std::sync::Arc;

use brmi::policy::CustomPolicy;
use brmi::{remote_interface, Batch};
use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::invocation::ExceptionAction;
use brmi_wire::RemoteError;
use parking_lot::{Mutex, RwLock};

remote_interface! {
    /// A credit card account (the paper's `CreditCard`).
    pub interface CreditCard {
        /// Remaining credit line.
        #[read_only]
        fn get_credit_line() -> f64;
        /// Charges the card.
        fn make_purchase(amount: f64);
        /// Total charged so far.
        #[read_only]
        fn get_balance() -> f64;
    }
}

remote_interface! {
    /// Account creation and lookup (the paper's `CreditManager`).
    pub interface CreditManager {
        /// Finds an existing account; throws `AccountNotFoundException`.
        #[read_only]
        fn find_credit_account(customer: String) -> remote CreditCard;
        /// Creates an account; throws `DuplicateAccountException`.
        fn create_account(customer: String, limit: f64) -> remote CreditCard;
    }
}

/// One account's server-side state.
pub struct Account {
    limit: f64,
    balance: Mutex<f64>,
}

impl Account {
    fn new(limit: f64) -> Arc<Self> {
        Arc::new(Account {
            limit,
            balance: Mutex::new(0.0),
        })
    }
}

impl CreditCard for Account {
    fn get_credit_line(&self) -> Result<f64, RemoteError> {
        Ok(self.limit - *self.balance.lock())
    }

    fn make_purchase(&self, amount: f64) -> Result<(), RemoteError> {
        if amount <= 0.0 {
            return Err(RemoteError::application(
                "InvalidAmountException",
                format!("purchase amount must be positive, got {amount}"),
            ));
        }
        let mut balance = self.balance.lock();
        if *balance + amount > self.limit {
            return Err(RemoteError::application(
                "OverdraftException",
                format!("purchase of {amount} exceeds credit line"),
            ));
        }
        *balance += amount;
        Ok(())
    }

    fn get_balance(&self) -> Result<f64, RemoteError> {
        Ok(*self.balance.lock())
    }
}

/// The bank: customer name → account.
#[derive(Default)]
pub struct Bank {
    accounts: RwLock<HashMap<String, Arc<Account>>>,
}

impl Bank {
    /// Creates an empty bank.
    pub fn new() -> Arc<Self> {
        Arc::new(Bank::default())
    }

    /// Server-side convenience used by fixtures.
    pub fn open_account(&self, customer: &str, limit: f64) -> Arc<Account> {
        let account = Account::new(limit);
        self.accounts
            .write()
            .insert(customer.to_owned(), Arc::clone(&account));
        account
    }

    /// Balance inspection for tests.
    pub fn balance_of(&self, customer: &str) -> Option<f64> {
        self.accounts
            .read()
            .get(customer)
            .map(|account| *account.balance.lock())
    }
}

impl CreditManager for Bank {
    fn find_credit_account(&self, customer: String) -> Result<Arc<dyn CreditCard>, RemoteError> {
        self.accounts
            .read()
            .get(&customer)
            .cloned()
            .map(|account| account as Arc<dyn CreditCard>)
            .ok_or_else(|| {
                RemoteError::application(
                    "AccountNotFoundException",
                    format!("no account for customer {customer}"),
                )
            })
    }

    fn create_account(
        &self,
        customer: String,
        limit: f64,
    ) -> Result<Arc<dyn CreditCard>, RemoteError> {
        let mut accounts = self.accounts.write();
        if accounts.contains_key(&customer) {
            return Err(RemoteError::application(
                "DuplicateAccountException",
                format!("account already exists for {customer}"),
            ));
        }
        let account = Account::new(limit);
        accounts.insert(customer, Arc::clone(&account));
        Ok(account as Arc<dyn CreditCard>)
    }
}

/// Outcome of a purchase session: per-purchase results plus the remaining
/// credit line.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// One entry per attempted purchase: `None` for success, the exception
    /// name for a failure.
    pub purchase_errors: Vec<Option<String>>,
    /// Remaining credit line, or the exception that made it unavailable.
    pub credit_line: Result<f64, String>,
}

/// RMI client: lookup + n purchases + credit line = `2 + n` round trips.
///
/// # Errors
///
/// Only lookup failures abort the session; purchase failures are recorded
/// in the report, matching the BRMI policy below.
pub fn rmi_purchase_session(
    manager: &CreditManagerStub,
    customer: &str,
    amounts: &[f64],
) -> Result<SessionReport, RemoteError> {
    let account = manager.find_credit_account(customer.to_owned())?;
    let mut purchase_errors = Vec::with_capacity(amounts.len());
    for &amount in amounts {
        purchase_errors.push(match account.make_purchase(amount) {
            Ok(()) => None,
            Err(err) => Some(err.exception().to_owned()),
        });
    }
    let credit_line = account
        .get_credit_line()
        .map_err(|err| err.exception().to_owned());
    Ok(SessionReport {
        purchase_errors,
        credit_line,
    })
}

/// The paper's exception policy for the bank batch: continue by default,
/// break when the account lookup at position 0 fails.
pub fn bank_policy() -> CustomPolicy {
    let mut policy = CustomPolicy::new();
    policy.set_default_action(ExceptionAction::Continue);
    policy.set_action(
        "AccountNotFoundException",
        CreditManagerSkeleton::METHOD_FIND_CREDIT_ACCOUNT,
        0,
        ExceptionAction::Break,
    );
    policy
}

/// BRMI client: the whole session in one round trip (Section 5.1).
///
/// # Errors
///
/// Communication failures at `flush`. Lookup failure surfaces through the
/// report's `credit_line` (the policy broke the batch), mirroring where
/// the paper's client sees it re-thrown from `creditLineFuture.get()`.
pub fn brmi_purchase_session(
    conn: &Connection,
    manager_ref: &RemoteRef,
    customer: &str,
    amounts: &[f64],
) -> Result<SessionReport, RemoteError> {
    let batch = Batch::new(conn.clone(), bank_policy());
    let manager = BCreditManager::new(&batch, manager_ref);
    let account = manager.find_credit_account(customer.to_owned());
    let purchases: Vec<_> = amounts
        .iter()
        .map(|&amount| account.make_purchase(amount))
        .collect();
    let credit_line = account.get_credit_line();
    batch.flush()?;

    Ok(SessionReport {
        purchase_errors: purchases
            .into_iter()
            .map(|purchase| match purchase.get() {
                Ok(()) => None,
                Err(err) => Some(err.exception().to_owned()),
            })
            .collect(),
        credit_line: credit_line.get().map_err(|err| err.exception().to_owned()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::AppRig;

    fn rig() -> (AppRig, Arc<Bank>) {
        let bank = Bank::new();
        bank.open_account("alice", 1000.0);
        let rig = AppRig::serve("bank", CreditManagerSkeleton::remote_arc(bank.clone()));
        (rig, bank)
    }

    #[test]
    fn sessions_agree_between_rmi_and_brmi() {
        let (rig_a, bank_a) = rig();
        let (rig_b, bank_b) = rig();
        let amounts = [123.0, 456.0, 2000.0, 10.0]; // one overdraft
        let rmi = rmi_purchase_session(
            &CreditManagerStub::new(rig_a.root.clone()),
            "alice",
            &amounts,
        )
        .unwrap();
        let brmi = brmi_purchase_session(&rig_b.conn, &rig_b.root, "alice", &amounts).unwrap();
        assert_eq!(rmi, brmi);
        assert_eq!(bank_a.balance_of("alice"), bank_b.balance_of("alice"));
        assert_eq!(bank_a.balance_of("alice"), Some(123.0 + 456.0 + 10.0));
        assert_eq!(
            rmi.purchase_errors,
            vec![None, None, Some("OverdraftException".to_owned()), None]
        );
        assert_eq!(rmi.credit_line, Ok(1000.0 - 589.0));
    }

    #[test]
    fn brmi_session_is_one_round_trip() {
        let (rig, _bank) = rig();
        rig.stats.reset();
        brmi_purchase_session(&rig.conn, &rig.root, "alice", &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(rig.stats.requests(), 1);

        rig.stats.reset();
        rmi_purchase_session(
            &CreditManagerStub::new(rig.root.clone()),
            "alice",
            &[1.0, 2.0, 3.0],
        )
        .unwrap();
        assert_eq!(rig.stats.requests(), 2 + 3, "RMI: lookup + n + credit line");
    }

    #[test]
    fn failed_lookup_breaks_the_batch() {
        let (rig, bank) = rig();
        let report = brmi_purchase_session(&rig.conn, &rig.root, "mallory", &[9.0]).unwrap();
        // The policy broke at the lookup: nothing was purchased, and the
        // failure re-throws from the dependent futures.
        assert_eq!(
            report.purchase_errors,
            vec![Some("AccountNotFoundException".to_owned())]
        );
        assert_eq!(
            report.credit_line,
            Err("AccountNotFoundException".to_owned())
        );
        assert_eq!(bank.balance_of("mallory"), None);
    }

    #[test]
    fn create_account_rejects_duplicates() {
        let (rig, _bank) = rig();
        let stub = CreditManagerStub::new(rig.root.clone());
        let card = stub.create_account("bob".into(), 50.0).unwrap();
        card.make_purchase(20.0).unwrap();
        assert_eq!(card.get_balance().unwrap(), 20.0);
        let err = stub.create_account("bob".into(), 10.0).unwrap_err();
        assert_eq!(err.exception(), "DuplicateAccountException");
    }

    #[test]
    fn invalid_amount_is_rejected_in_both_clients() {
        let (rig, _bank) = rig();
        let rmi = rmi_purchase_session(&CreditManagerStub::new(rig.root.clone()), "alice", &[-5.0])
            .unwrap();
        let brmi = brmi_purchase_session(&rig.conn, &rig.root, "alice", &[-5.0]).unwrap();
        assert_eq!(rmi, brmi);
        assert_eq!(
            rmi.purchase_errors,
            vec![Some("InvalidAmountException".to_owned())]
        );
    }
}
