//! The no-op micro-benchmark (paper Section 5.3, Figures 5–6): a
//! do-nothing remote method isolating pure middleware overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use brmi::policy::AbortPolicy;
use brmi::{remote_interface, Batch, BatchFuture};
use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::RemoteError;

remote_interface! {
    /// A service with one do-nothing method.
    pub interface Noop {
        /// Does nothing, takes nothing, returns nothing.
        fn noop();
    }
}

/// Counting no-op server, so tests can verify each call really executed.
#[derive(Default)]
pub struct NoopServer {
    calls: AtomicU64,
}

impl NoopServer {
    /// Creates a fresh server.
    pub fn new() -> Arc<Self> {
        Arc::new(NoopServer::default())
    }

    /// Calls served so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Noop for NoopServer {
    fn noop(&self) -> Result<(), RemoteError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// RMI driver: `n` round trips.
///
/// # Errors
///
/// Transport failures.
pub fn rmi_noops(stub: &NoopStub, n: usize) -> Result<(), RemoteError> {
    for _ in 0..n {
        stub.noop()?;
    }
    Ok(())
}

/// BRMI driver: one batch of `n` calls — a single round trip
/// (the paper uses one batch irrespective of call count).
///
/// # Errors
///
/// Transport failures at `flush`.
pub fn brmi_noops(conn: &Connection, noop_ref: &RemoteRef, n: usize) -> Result<(), RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let noop = BNoop::new(&batch, noop_ref);
    let futures: Vec<BatchFuture<()>> = (0..n).map(|_| noop.noop()).collect();
    batch.flush()?;
    for future in futures {
        future.get()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::AppRig;

    #[test]
    fn every_call_reaches_the_server_once() {
        let server = NoopServer::new();
        let rig = AppRig::serve("noop", NoopSkeleton::remote_arc(server.clone()));

        rmi_noops(&NoopStub::new(rig.root.clone()), 5).unwrap();
        assert_eq!(server.calls(), 5);
        assert_eq!(rig.stats.requests(), 5);

        rig.stats.reset();
        brmi_noops(&rig.conn, &rig.root, 5).unwrap();
        assert_eq!(server.calls(), 10);
        assert_eq!(rig.stats.requests(), 1);
    }

    #[test]
    fn zero_calls_cost_zero_round_trips() {
        let server = NoopServer::new();
        let rig = AppRig::serve("noop", NoopSkeleton::remote_arc(server.clone()));
        brmi_noops(&rig.conn, &rig.root, 0).unwrap();
        assert_eq!(rig.stats.requests(), 0);
    }
}
