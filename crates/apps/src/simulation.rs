//! The remote-simulation micro-benchmark (paper Section 5.3,
//! Figures 10–11): a `Simulation` service whose steps repeatedly invoke a
//! `Balancer` that the *client* obtained and passed back.
//!
//! Under RMI the balancer argument arrives as a marshalled stub, so every
//! `balance()` inside a step is a loopback middleware call; under BRMI the
//! batch executor hands the step the identical local object, so
//! `balance()` is a plain method call (Section 4.4). `flush` is called
//! after every step, so the measured benefit is purely identity
//! preservation, exactly as in the paper.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use brmi::policy::AbortPolicy;
use brmi::{remote_interface, Batch};
use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::RemoteError;
use parking_lot::Mutex;

remote_interface! {
    /// Load-balancing hook invoked by every simulation step.
    pub interface Balancer {
        /// One balancing action.
        fn balance();
        /// How many times this balancer ran.
        fn invocations() -> i64;
    }
}

remote_interface! {
    /// The simulation service (the paper's `Simulation`).
    pub interface Simulation {
        /// Creates the balancer the client will parameterize steps with.
        fn create_balancer() -> remote Balancer;
        /// Runs one step, calling `balancer.balance()` `reps` times;
        /// returns the step number.
        fn perform_simulation_step(reps: i32, balancer: remote Balancer) -> i32;
        /// Aggregate result over all steps.
        fn get_simulation_results() -> f64;
    }
}

/// Server-side balancer.
#[derive(Default)]
pub struct RoundRobinBalancer {
    invocations: AtomicU64,
}

impl Balancer for RoundRobinBalancer {
    fn balance(&self) -> Result<(), RemoteError> {
        self.invocations.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn invocations(&self) -> Result<i64, RemoteError> {
        Ok(self.invocations.load(Ordering::Relaxed) as i64)
    }
}

/// Server-side simulation state.
#[derive(Default)]
pub struct SimulationServer {
    steps: AtomicU64,
    accumulator: Mutex<f64>,
}

impl SimulationServer {
    /// Creates a fresh simulation.
    pub fn new() -> Arc<Self> {
        Arc::new(SimulationServer::default())
    }

    /// Steps executed so far (test introspection).
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }
}

impl Simulation for SimulationServer {
    fn create_balancer(&self) -> Result<Arc<dyn Balancer>, RemoteError> {
        Ok(Arc::new(RoundRobinBalancer::default()))
    }

    fn perform_simulation_step(
        &self,
        reps: i32,
        balancer: Arc<dyn Balancer>,
    ) -> Result<i32, RemoteError> {
        if reps < 0 {
            return Err(RemoteError::application(
                "InvalidRepsException",
                format!("reps must be non-negative, got {reps}"),
            ));
        }
        for _ in 0..reps {
            // Local call under BRMI; loopback middleware call under RMI.
            balancer.balance()?;
        }
        let step = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        *self.accumulator.lock() += f64::from(reps);
        Ok(step as i32)
    }

    fn get_simulation_results(&self) -> Result<f64, RemoteError> {
        Ok(*self.accumulator.lock())
    }
}

/// RMI driver: `create_balancer`, then one `perform_simulation_step` per
/// step, then `get_simulation_results` — and `reps` loopback calls inside
/// every step.
///
/// # Errors
///
/// Any remote failure.
pub fn rmi_run(stub: &SimulationStub, steps: usize, reps: i32) -> Result<f64, RemoteError> {
    let balancer = stub.create_balancer()?;
    for _ in 0..steps {
        stub.perform_simulation_step(reps, &balancer)?;
    }
    stub.get_simulation_results()
}

/// BRMI driver: identical call sequence, flushing after every step
/// (batch size 1, as in the paper) — the speedup comes solely from
/// identity preservation.
///
/// # Errors
///
/// Communication failures at any flush; remote failures via futures.
pub fn brmi_run(
    conn: &Connection,
    simulation_ref: &RemoteRef,
    steps: usize,
    reps: i32,
) -> Result<f64, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let simulation = BSimulation::new(&batch, simulation_ref);
    let balancer = simulation.create_balancer();
    batch.flush_and_continue()?;
    for _ in 0..steps {
        let step = simulation.perform_simulation_step(reps, &balancer);
        batch.flush_and_continue()?;
        step.get()?;
    }
    let results = simulation.get_simulation_results();
    batch.flush()?;
    results.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::AppRig;

    fn rig() -> (AppRig, Arc<SimulationServer>) {
        let simulation = SimulationServer::new();
        let rig = AppRig::serve(
            "simulation",
            SimulationSkeleton::remote_arc(simulation.clone()),
        );
        (rig, simulation)
    }

    #[test]
    fn both_drivers_compute_the_same_result() {
        let (rig_a, sim_a) = rig();
        let (rig_b, sim_b) = rig();
        let rmi = rmi_run(&SimulationStub::new(rig_a.root.clone()), 10, 3).unwrap();
        let brmi = brmi_run(&rig_b.conn, &rig_b.root, 10, 3).unwrap();
        assert_eq!(rmi, brmi);
        assert_eq!(rmi, 30.0);
        assert_eq!(sim_a.steps(), 10);
        assert_eq!(sim_b.steps(), 10);
    }

    #[test]
    fn rmi_pays_loopback_calls_brmi_does_not() {
        let (rig_rmi, _sim) = rig();
        rmi_run(&SimulationStub::new(rig_rmi.root.clone()), 5, 4).unwrap();
        assert_eq!(
            rig_rmi.server.loopback_calls(),
            5 * 4,
            "every balance() under RMI is a loopback middleware call"
        );

        let (rig_brmi, _sim) = rig();
        brmi_run(&rig_brmi.conn, &rig_brmi.root, 5, 4).unwrap();
        assert_eq!(
            rig_brmi.server.loopback_calls(),
            0,
            "BRMI resolves the balancer to the local object"
        );
    }

    #[test]
    fn round_trip_counts_are_steps_plus_bookkeeping() {
        let (rig, _sim) = rig();
        rig.stats.reset();
        rmi_run(&SimulationStub::new(rig.root.clone()), 8, 1).unwrap();
        assert_eq!(rig.stats.requests(), 1 + 8 + 1);

        rig.stats.reset();
        brmi_run(&rig.conn, &rig.root, 8, 1).unwrap();
        assert_eq!(
            rig.stats.requests(),
            1 + 8 + 1,
            "flush per step, as in the paper"
        );
    }

    #[test]
    fn negative_reps_fail_in_both_drivers() {
        let (rig, _sim) = rig();
        let rmi = rmi_run(&SimulationStub::new(rig.root.clone()), 1, -1).unwrap_err();
        let brmi = brmi_run(&rig.conn, &rig.root, 1, -1).unwrap_err();
        assert_eq!(rmi.exception(), "InvalidRepsException");
        assert_eq!(brmi.exception(), rmi.exception());
    }
}
