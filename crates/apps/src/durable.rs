//! Durable-origin stress workload: what crash recoverability *costs* on
//! the append path, and what recovery replay costs per journaled record.
//!
//! Three phases over the same keyed no-op workload:
//!
//! 1. **In-memory twin** — the identical workload against an origin with
//!    no journal attached, timed as the wall-clock baseline;
//! 2. **Durable run** — the origin journals every keyed execution
//!    (append + CRC frame + fsync before the reply is released) into a
//!    [`TempDir`]-guarded log, with the configured snapshot cadence
//!    compacting covered segments as it goes;
//! 3. **Recovery** — a fresh origin incarnation reopens the directory via
//!    `attach_durable`, restoring the newest snapshot and re-executing
//!    the journaled tail.
//!
//! Clients run sequentially with **pinned** client ids
//! ([`KeySource::with_client_id`]), so every journaled byte — keys,
//! request frames, replies, snapshot payloads — is identical run to run.
//! The count fields of the report (appends, bytes, fsyncs, snapshots,
//! replayed executions) are therefore exact and serve as the committed
//! `BENCH_durable.json` baseline; the wall-clock fields (append-path
//! overhead vs the in-memory twin, recovery time) are for humans.

use std::sync::Arc;
use std::time::{Duration, Instant};

use brmi::BatchExecutor;
use brmi_durable::{LogConfig, TempDir};
use brmi_obs::{MetricsSnapshot, Registry, Snapshot};
use brmi_rmi::{Connection, DurableOptions, DurableReport, KeySource, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::Transport;
use brmi_wire::RemoteError;

use crate::noop::{brmi_noops, NoopServer, NoopSkeleton};

/// Shape of one durable stress run.
#[derive(Debug, Clone)]
pub struct DurableStressConfig {
    /// Sequential keyed clients (pinned client ids keep the journal
    /// bytes reproducible).
    pub clients: usize,
    /// Keyed batches flushed per client (plus one keyed lookup each).
    pub batches_per_client: usize,
    /// No-op calls folded into each batch.
    pub calls_per_batch: usize,
    /// Segment roll size for the log.
    pub segment_bytes: u64,
    /// Compacted-snapshot cadence in keyed executions (`0` disables).
    pub snapshot_every: u64,
}

impl Default for DurableStressConfig {
    fn default() -> Self {
        DurableStressConfig {
            clients: 4,
            batches_per_client: 16,
            calls_per_batch: 8,
            segment_bytes: 16 * 1024,
            snapshot_every: 64,
        }
    }
}

/// What one durable stress run did. Every count field is deterministic
/// for a given [`DurableStressConfig`]; the `elapsed_*` fields are wall
/// clock.
#[derive(Debug, Clone)]
pub struct DurableStressReport {
    /// The configuration that produced this report.
    pub config: DurableStressConfig,
    /// No-op invocations the durable origin executed.
    pub calls_executed: u64,
    /// Records appended to the journal (one per keyed execution).
    pub appends: u64,
    /// Bytes physically written (record frames + snapshot payloads).
    pub append_bytes: u64,
    /// `fsync` calls the log issued.
    pub fsyncs: u64,
    /// Compacted snapshots written by the cadence.
    pub snapshots: u64,
    /// Live segment files when the workload finished (snapshots
    /// garbage-collect covered ones).
    pub segments_after: u64,
    /// What recovery found and rebuilt.
    pub recovery: DurableReport,
    /// No-op invocations re-executed during recovery replay (the part of
    /// the workload not absorbed by the snapshot).
    pub calls_replayed: u64,
    /// Unified registry snapshot of the durable and replay metric
    /// families — deterministic fields only, ready for `--metrics-json`.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the in-memory twin workload.
    pub elapsed_memory: Duration,
    /// Wall-clock duration of the journaled workload.
    pub elapsed_durable: Duration,
    /// Wall-clock duration of `attach_durable` on the recovery
    /// incarnation (snapshot restore + journal replay).
    pub elapsed_recovery: Duration,
}

impl DurableStressReport {
    /// Append-path wall-clock overhead: durable elapsed over the
    /// in-memory twin's (≥ 1.0 in practice; fsyncs dominate).
    pub fn append_overhead(&self) -> f64 {
        self.elapsed_durable.as_secs_f64() / self.elapsed_memory.as_secs_f64().max(f64::EPSILON)
    }

    /// Journaled keyed executions recovered per wall-clock second of
    /// replay.
    pub fn replayed_per_sec(&self) -> f64 {
        self.recovery.replayed_executions as f64
            / self.elapsed_recovery.as_secs_f64().max(f64::EPSILON)
    }
}

/// The deterministic setup phase, identical for every incarnation (the
/// `attach_durable` contract).
fn noop_origin() -> (Arc<RmiServer>, Arc<NoopServer>) {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let noop = NoopServer::new();
    server
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .expect("fresh origin bind");
    (server, noop)
}

/// Runs the keyed workload: sequential clients with pinned ids, one
/// keyed lookup plus `batches_per_client` keyed flushes each.
fn run_clients(server: &Arc<RmiServer>, config: &DurableStressConfig) -> Result<(), RemoteError> {
    for client in 0..config.clients {
        let transport = Arc::new(InProcTransport::new(server.clone())) as Arc<dyn Transport>;
        let conn = Connection::with_key_source(
            transport,
            KeySource::with_client_id(0xD0_0000 + client as u64),
        );
        let root = conn.lookup("noop")?;
        for _ in 0..config.batches_per_client {
            brmi_noops(&conn, &root, config.calls_per_batch)?;
        }
    }
    Ok(())
}

fn durable_options(config: &DurableStressConfig) -> DurableOptions {
    DurableOptions {
        log: LogConfig {
            segment_bytes: config.segment_bytes,
            ..LogConfig::default()
        },
        snapshot_every: config.snapshot_every,
    }
}

/// Runs the three phases and reports the journal's exact accounting plus
/// the wall-clock costs.
///
/// # Errors
///
/// Returns the first client or attach error; a healthy run never fails.
pub fn run_durable_stress(
    config: &DurableStressConfig,
) -> Result<DurableStressReport, RemoteError> {
    // Phase 1: the in-memory twin — same workload, no journal.
    let (twin, _twin_noop) = noop_origin();
    let started = Instant::now();
    run_clients(&twin, config)?;
    let elapsed_memory = started.elapsed();

    // Phase 2: the journaled origin. The tempdir guard removes the log
    // even when an assert below panics.
    let dir = TempDir::new("durable-stress");
    let (server, noop) = noop_origin();
    server
        .attach_durable(dir.path(), durable_options(config))
        .map_err(|err| RemoteError::transport(format!("attach durable log: {err}")))?;
    let journal = server.journal().expect("journal attached");
    let registry = Registry::new();
    journal.register_metrics(&registry);
    server.reply_cache().register_metrics(&registry);
    let started = Instant::now();
    run_clients(&server, config)?;
    let elapsed_durable = started.elapsed();
    let stats = journal.stats();
    let segments_after = journal.log().segment_count() as u64;
    let calls_executed = noop.calls();

    // Phase 3: recovery — a fresh incarnation reopens the directory.
    let (recovered, recovered_noop) = noop_origin();
    let started = Instant::now();
    let recovery = recovered
        .attach_durable(dir.path(), durable_options(config))
        .map_err(|err| RemoteError::transport(format!("recover durable log: {err}")))?;
    let elapsed_recovery = started.elapsed();

    Ok(DurableStressReport {
        config: config.clone(),
        calls_executed,
        appends: stats.appends,
        append_bytes: stats.bytes,
        fsyncs: stats.fsyncs,
        snapshots: stats.snapshots,
        segments_after,
        recovery,
        calls_replayed: recovered_noop.calls(),
        metrics: registry.snapshot().deterministic_only(),
        elapsed_memory,
        elapsed_durable,
        elapsed_recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_and_deterministic() {
        let config = DurableStressConfig {
            clients: 3,
            batches_per_client: 4,
            calls_per_batch: 5,
            segment_bytes: 4 * 1024,
            snapshot_every: 0,
        };
        let a = run_durable_stress(&config).unwrap();
        assert_eq!(a.calls_executed, 3 * 4 * 5);
        // One keyed lookup plus one keyed batch per flush, each appended
        // exactly once.
        assert_eq!(a.appends, 3 * (1 + 4));
        // Sequential clients: every append is its own group commit.
        assert_eq!(a.fsyncs, a.appends);
        assert_eq!(a.snapshots, 0);
        // Snapshots disabled ⇒ recovery replays the full journal and
        // re-executes every call.
        assert_eq!(a.recovery.replayed_executions, a.appends);
        assert!(!a.recovery.restored_snapshot);
        assert_eq!(a.recovery.truncated_records, 0);
        assert_eq!(a.calls_replayed, a.calls_executed);
        // Pinned ids + fixed workload ⇒ bit-identical journals across
        // runs — the property the committed bench baseline rests on.
        let b = run_durable_stress(&config).unwrap();
        assert_eq!(a.appends, b.appends);
        assert_eq!(a.append_bytes, b.append_bytes);
        assert_eq!(a.fsyncs, b.fsyncs);
    }

    #[test]
    fn snapshot_cadence_compacts_and_shortens_replay() {
        let config = DurableStressConfig {
            clients: 2,
            batches_per_client: 12,
            calls_per_batch: 4,
            segment_bytes: 2 * 1024,
            snapshot_every: 8,
        };
        let report = run_durable_stress(&config).unwrap();
        assert!(report.snapshots >= 1, "cadence must fire: {report:?}");
        assert!(report.recovery.restored_snapshot);
        // The snapshot absorbed a prefix: replay re-executes strictly
        // fewer records (and fewer calls) than the workload ran.
        assert!(report.recovery.replayed_executions < report.appends);
        assert!(report.calls_replayed < report.calls_executed);
        assert!(report.append_overhead() > 0.0);
        assert!(report.replayed_per_sec() >= 0.0);
    }
}
