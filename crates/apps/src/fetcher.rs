//! Hot-key read workload through a [`BatchFetcher`]: many clients, few keys.
//!
//! The relay workload ([`crate::relay`]) shows round *trips* collapsing;
//! this one shows origin *executions* collapsing. A fleet of clients
//! hammers the same small set of `#[read_only]` bank queries — the
//! "everyone polls the same dashboard" shape — and the fetcher serves the
//! repeats from its keyed cache, so the origin executes each distinct
//! (object, method, args) read **once** no matter how many clients ask.
//!
//! ```text
//!  N clients ──batches of hot reads──▶ BatchFetcher ──probe per distinct key──▶ origin
//! ```
//!
//! The workload is deterministic by construction: a warm phase (one batch
//! over every hot key) populates the cache with exactly `hot_keys` origin
//! executions, then the concurrent phase is all cache hits — the origin's
//! executed-call counter comes from [`ExecutorStats`], which counts
//! *executions*, not round trips, so the committed `BENCH_fetcher.json`
//! baseline is reproducible bit for bit. Pass-through mode
//! ([`FetcherStressConfig::passthrough`]) runs the identical client
//! program with no fetcher for the comparison column.
//!
//! [`BatchFetcher`]: brmi_transport::fetcher::BatchFetcher
//! [`ExecutorStats`]: brmi::executor::ExecutorStats

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use brmi::policy::AbortPolicy;
use brmi::{Batch, BatchExecutor};
use brmi_obs::{MetricsSnapshot, Registry, Snapshot};
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::fetcher::BatchFetcher;
use brmi_transport::inproc::InProcTransport;
use brmi_transport::relay::ReadCachePolicy;
use brmi_transport::RequestHandler;
use brmi_wire::{MethodRegistry, RemoteError};

use crate::bank::{
    BCreditCard, Bank, CreditCard, CreditCardSkeleton, CreditManagerSkeleton, CreditManagerStub,
};

/// Shape of one fetcher stress run.
#[derive(Debug, Clone)]
pub struct FetcherStressConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Read batches flushed per client (each covers every hot key).
    pub batches_per_client: usize,
    /// Distinct hot accounts (= distinct cache keys).
    pub hot_keys: usize,
    /// Read-cache knobs, or `None` to bypass the fetcher entirely (the
    /// pass-through comparison column).
    pub cache: Option<ReadCachePolicy>,
}

impl FetcherStressConfig {
    /// A cached run: TTL far beyond the run's duration and capacity
    /// covering every hot key, so the concurrent phase is deterministic
    /// (all hits — no expiry or eviction mid-run).
    pub fn cached(clients: usize, batches_per_client: usize, hot_keys: usize) -> Self {
        FetcherStressConfig {
            clients,
            batches_per_client,
            hot_keys,
            cache: Some(ReadCachePolicy {
                ttl: Duration::from_secs(300),
                capacity: hot_keys.max(1) * 2,
            }),
        }
    }

    /// The identical client program with no fetcher in the path.
    pub fn passthrough(clients: usize, batches_per_client: usize, hot_keys: usize) -> Self {
        FetcherStressConfig {
            clients,
            batches_per_client,
            hot_keys,
            cache: None,
        }
    }
}

/// What one fetcher stress run did. Every count is deterministic for a
/// given config; `elapsed` is wall clock.
#[derive(Debug, Clone)]
pub struct FetcherStressReport {
    /// The configuration that produced this report.
    pub config: FetcherStressConfig,
    /// Read calls the clients issued: `(1 + clients × batches) × hot_keys`
    /// (the leading 1 is the warm batch).
    pub client_read_calls: u64,
    /// Batched calls the origin executor actually executed — the number
    /// the cache exists to shrink.
    pub origin_executed_calls: u64,
    /// The `#[read_only]` subset of `origin_executed_calls`.
    pub origin_read_calls: u64,
    /// Cache lookups performed by the fetcher (0 in pass-through mode).
    pub lookups: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that piggybacked on an in-flight probe.
    pub coalesced: u64,
    /// Lookups that probed the origin.
    pub misses: u64,
    /// Probe batches the fetcher sent upstream.
    pub probe_batches: u64,
    /// Unified registry snapshot of the run's fetcher and executor
    /// metrics — deterministic fields only (counters and gauges), ready
    /// for `--metrics-json`.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the concurrent phase.
    pub elapsed: Duration,
}

impl FetcherStressReport {
    /// Fraction of client read calls that cost the origin nothing.
    pub fn absorbed_ratio(&self) -> f64 {
        if self.client_read_calls == 0 {
            return 0.0;
        }
        (self.hits + self.coalesced) as f64 / self.client_read_calls as f64
    }

    /// How many times fewer origin executions this run needed than
    /// `baseline` (the pass-through run of the same client program).
    pub fn execution_reduction(&self, baseline: &FetcherStressReport) -> f64 {
        baseline.origin_executed_calls as f64 / (self.origin_executed_calls as f64).max(1.0)
    }
}

/// One read batch covering every hot account, validated against the known
/// per-account balances (account `i` owes `i + 1`).
fn read_hot_keys(conn: &Connection, refs: &[RemoteRef]) -> Result<(), RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let balances: Vec<_> = refs
        .iter()
        .map(|account| BCreditCard::new(&batch, account).get_balance())
        .collect();
    batch.flush()?;
    for (i, balance) in balances.iter().enumerate() {
        let expected = (i + 1) as f64;
        let got = balance.get()?;
        if got != expected {
            return Err(RemoteError::application(
                "StaleReadException",
                format!("account {i}: read {got}, origin holds {expected}"),
            ));
        }
    }
    Ok(())
}

/// Runs `config`'s worth of hot-key readers and reports what happened.
///
/// # Errors
///
/// Returns the first client error — including a read that observed a value
/// the origin never held (the workload checks every balance it reads).
///
/// # Panics
///
/// Panics when a client thread itself panics.
pub fn run_fetcher_stress(
    config: &FetcherStressConfig,
) -> Result<FetcherStressReport, RemoteError> {
    // Origin: an RMI server with batching installed and one hot account
    // per key, each holding a distinct balance so stale reads are visible.
    let origin = RmiServer::new();
    let executor = BatchExecutor::install(&origin);
    let bank = Bank::new();
    for i in 0..config.hot_keys {
        let account = bank.open_account(&format!("cust-{i}"), 1_000.0);
        account
            .make_purchase((i + 1) as f64)
            .expect("seed purchase fits the limit");
    }
    origin
        .bind("bank", CreditManagerSkeleton::remote_arc(bank))
        .expect("fresh origin bind");

    // Read tier: the fetcher (when configured) fronting the origin, with
    // metadata from both bank interfaces.
    let origin_handler: Arc<dyn RequestHandler> = origin;
    let fetcher = config.cache.map(|policy| {
        let registry = Arc::new(MethodRegistry::of(&[
            CreditCardSkeleton::INTERFACE_META,
            CreditManagerSkeleton::INTERFACE_META,
        ]));
        BatchFetcher::new(Arc::clone(&origin_handler), registry, policy)
    });
    let serving: Arc<dyn RequestHandler> = match &fetcher {
        Some(fetcher) => Arc::clone(fetcher) as Arc<dyn RequestHandler>,
        None => Arc::clone(&origin_handler),
    };
    let transport = Arc::new(InProcTransport::new(serving));

    // Resolve the hot accounts once (plain RMI lookups — these are not
    // batched calls, so they never count as origin executions) and warm
    // the cache with one full read batch.
    let conn = Connection::new(transport);
    let root = conn.lookup("bank")?;
    let manager = CreditManagerStub::new(root);
    let refs: Vec<RemoteRef> = (0..config.hot_keys)
        .map(|i| {
            manager
                .find_credit_account(format!("cust-{i}"))
                .map(|stub| stub.remote_ref().clone())
        })
        .collect::<Result<_, _>>()?;
    read_hot_keys(&conn, &refs)?;

    // Concurrent phase: every client rereads the hot set repeatedly.
    let gate = Arc::new(Barrier::new(config.clients + 1));
    let handles: Vec<_> = (0..config.clients)
        .map(|_| {
            let conn = conn.clone();
            let refs = refs.clone();
            let gate = Arc::clone(&gate);
            let batches = config.batches_per_client;
            std::thread::spawn(move || -> Result<(), RemoteError> {
                gate.wait();
                for _ in 0..batches {
                    read_hot_keys(&conn, &refs)?;
                }
                Ok(())
            })
        })
        .collect();
    gate.wait();
    let started = Instant::now();
    let mut first_error: Option<RemoteError> = None;
    for handle in handles {
        match handle.join().expect("fetcher stress client panicked") {
            Ok(()) => {}
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    let elapsed = started.elapsed();
    if let Some(err) = first_error {
        return Err(err);
    }

    let registry = Registry::new();
    executor.register_metrics(&registry);
    if let Some(fetcher) = &fetcher {
        fetcher.stats().register_metrics(&registry);
    }
    let executor_stats = executor.stats();
    let fetcher_stats = fetcher.as_ref().map(|fetcher| fetcher.stats());
    let stat = |f: fn(&brmi_transport::fetcher::FetcherStats) -> u64| {
        fetcher_stats.as_ref().map_or(0, |stats| f(stats))
    };
    Ok(FetcherStressReport {
        config: config.clone(),
        client_read_calls: ((1 + config.clients * config.batches_per_client) * config.hot_keys)
            as u64,
        origin_executed_calls: executor_stats.calls_replayed,
        origin_read_calls: executor_stats.read_calls_replayed,
        lookups: stat(|s| s.lookups()),
        hits: stat(|s| s.hits()),
        coalesced: stat(|s| s.coalesced_reads()),
        misses: stat(|s| s.misses()),
        probe_batches: stat(|s| s.probe_batches()),
        metrics: registry.snapshot().deterministic_only(),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_reads_collapse_to_one_origin_execution_per_key() {
        let report = run_fetcher_stress(&FetcherStressConfig::cached(4, 3, 8)).unwrap();
        // The warm batch probed each key once; every later read hit.
        assert_eq!(report.origin_executed_calls, 8);
        assert_eq!(report.origin_read_calls, 8);
        assert_eq!(report.probe_batches, 1);
        assert_eq!(report.misses, 8);
        assert_eq!(report.client_read_calls, (1 + 4 * 3) * 8);
        assert_eq!(report.hits, (4 * 3 * 8) as u64);
        assert_eq!(report.coalesced, 0, "warm phase left nothing in flight");
        assert!((report.absorbed_ratio() - 96.0 / 104.0).abs() < 1e-12);
    }

    #[test]
    fn passthrough_executes_every_client_read() {
        let report = run_fetcher_stress(&FetcherStressConfig::passthrough(2, 2, 4)).unwrap();
        assert_eq!(report.origin_executed_calls, (1 + 2 * 2) * 4);
        assert_eq!(report.lookups, 0, "no fetcher in the path");
        assert_eq!(report.absorbed_ratio(), 0.0);
    }

    #[test]
    fn reduction_is_exact_and_reproducible() {
        let cached = run_fetcher_stress(&FetcherStressConfig::cached(8, 4, 16)).unwrap();
        let passthrough = run_fetcher_stress(&FetcherStressConfig::passthrough(8, 4, 16)).unwrap();
        // 16 executions vs (1 + 32) × 16: the fetched side is O(keys).
        assert_eq!(cached.origin_executed_calls, 16);
        assert_eq!(passthrough.origin_executed_calls, 33 * 16);
        assert_eq!(cached.execution_reduction(&passthrough), 33.0);
        // Deterministic counters: a rerun reports identical numbers.
        let again = run_fetcher_stress(&FetcherStressConfig::cached(8, 4, 16)).unwrap();
        assert_eq!(again.origin_executed_calls, cached.origin_executed_calls);
        assert_eq!(again.hits, cached.hits);
        assert_eq!(again.misses, cached.misses);
        assert_eq!(again.probe_batches, cached.probe_batches);
    }
}
