//! Overload-engineering workloads: admission control at the reactor,
//! bounded-queue saturation, and the adaptive relay window.
//!
//! Three deterministic experiments back the "graceful shedding, never a
//! timeout" claim:
//!
//! * [`run_admission_stress`] — thousands of real sockets against one
//!   reactor with `max_connections` set: every connection over the cap
//!   must read one error-coded `overloaded` frame and then EOF. Counts
//!   (admitted, shed, shed replies observed) are exact.
//! * [`run_saturation_model`] — a virtual-time single-server queue with
//!   the reactor's `max_queue_depth` admission rule, recording latency
//!   into a [`brmi_obs`] histogram: at 2× saturation the unbounded queue
//!   diverges, while the bounded one sheds the excess and keeps p99 at
//!   `max_queue_depth × service` — the bounded-tail story in integers.
//! * [`run_adaptive_convergence`] — a real [`BatchRelay`] under a
//!   [`VirtualClock`], fed arrivals at a fixed spacing per sweep point:
//!   the published `relay_adaptive_delay_nanos` gauge must converge to
//!   the closed-form optimum `sqrt(2·U·a) − a` of
//!   [`AdaptivePolicy`](brmi_transport::relay::AdaptivePolicy).

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use brmi_obs::Histogram;
use brmi_transport::inproc::InProcTransport;
use brmi_transport::reactor::{ReactorConfig, ReactorServer};
use brmi_transport::relay::{AdaptivePolicy, BatchRelay, RelayPolicy};
use brmi_transport::{Clock, RequestHandler, VirtualClock};
use brmi_wire::invocation::{
    BatchRequest, BatchResponse, CallSeq, InvocationData, PolicySpec, SlotOutcome, Target,
};
use brmi_wire::protocol::Frame;
use brmi_wire::{ObjectId, RemoteError, Value, WireCodec};

/// Shape of one admission-control run.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Connections the clients offer (sequentially, all held open).
    pub offered: usize,
    /// The reactor's connection cap ([`ReactorConfig::max_connections`]).
    pub max_connections: usize,
}

/// What one admission run did. Every count is deterministic for a given
/// [`AdmissionConfig`]; `elapsed` is wall clock.
#[derive(Debug, Clone)]
pub struct AdmissionReport {
    /// The configuration that produced this report.
    pub config: AdmissionConfig,
    /// Connections the reactor registered — `min(offered, cap)`.
    pub admitted: u64,
    /// Connections shed at accept (`reactor_connections_shed`).
    pub shed: u64,
    /// Shed clients that actually read the error-coded `overloaded`
    /// frame before EOF — equals `shed`, which is the "never a timeout"
    /// claim verified from the client side.
    pub shed_replies_seen: u64,
    /// Accept-path failures (`reactor_accept_failures`) — zero in a
    /// healthy run; sheds are not failures.
    pub accept_failures: u64,
    /// Wall-clock duration of the connect-and-verify phase.
    pub elapsed: Duration,
}

/// Handler for the admission run: admitted clients never send a request,
/// so it only has to exist.
struct NullHandler;

impl RequestHandler for NullHandler {
    fn handle(&self, _frame: Frame) -> Frame {
        Frame::Return(Value::Null)
    }
}

fn transport_err(err: std::io::Error) -> RemoteError {
    RemoteError::transport(err.to_string())
}

/// Reads one length-prefixed frame off a raw socket; `None` on clean EOF
/// before any header byte.
fn read_raw_frame(stream: &mut TcpStream) -> Result<Option<Frame>, RemoteError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(RemoteError::transport("truncated frame header")),
            Ok(n) => filled += n,
            Err(err) => return Err(transport_err(err)),
        }
    }
    let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
    let mut read = 0;
    while read < body.len() {
        match stream.read(&mut body[read..]) {
            Ok(0) => return Err(RemoteError::transport("truncated frame body")),
            Ok(n) => read += n,
            Err(err) => return Err(transport_err(err)),
        }
    }
    Ok(Some(Frame::from_wire_bytes(&body)?))
}

/// Offers `config.offered` sequential connections to a reactor capped at
/// `config.max_connections` and verifies, from both sides, that exactly
/// the overflow was shed with an error-coded reply.
///
/// The reactor runs a single event-loop thread, so admission decisions
/// happen in connect order and the shed set is exactly the clients past
/// the cap — which lets every one of them be read for its `overloaded`
/// frame without any timeout-based classification.
///
/// # Errors
///
/// Returns the first connect or read error, or a protocol error when a
/// shed client read anything but one `overloaded` frame followed by EOF.
///
/// # Panics
///
/// Panics when the server's admission counters fail to settle within 30
/// seconds.
pub fn run_admission_stress(config: &AdmissionConfig) -> Result<AdmissionReport, RemoteError> {
    let server = ReactorServer::bind_with(
        "127.0.0.1:0",
        Arc::new(NullHandler),
        ReactorConfig {
            reactor_threads: 1,
            max_connections: config.max_connections,
            ..ReactorConfig::default()
        },
    )?;

    let started = Instant::now();
    let mut clients = Vec::with_capacity(config.offered);
    for _ in 0..config.offered {
        clients.push(TcpStream::connect(server.local_addr()).map_err(transport_err)?);
    }

    let cap = config.max_connections.min(config.offered);
    let expect_shed = (config.offered - cap) as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.active_connections() < cap || server.stats().connections_shed() < expect_shed {
        assert!(
            Instant::now() < deadline,
            "admission counters did not settle: {} admitted, {} shed",
            server.active_connections(),
            server.stats().connections_shed()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Client-side proof of error-coded shedding: every client past the
    // cap reads one `overloaded` frame and then EOF. Shed clients never
    // wrote anything, so no reset can race the reply away.
    let mut shed_replies_seen = 0u64;
    for stream in &mut clients[cap..] {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(transport_err)?;
        match read_raw_frame(stream)? {
            Some(Frame::Error(env)) if env.kind == "overloaded" => shed_replies_seen += 1,
            other => {
                return Err(RemoteError::new(
                    brmi_wire::RemoteErrorKind::Protocol,
                    format!("shed client expected an overloaded frame, got {other:?}"),
                ))
            }
        }
        if read_raw_frame(stream)?.is_some() {
            return Err(RemoteError::new(
                brmi_wire::RemoteErrorKind::Protocol,
                "shed connection stayed open after the error frame",
            ));
        }
    }

    Ok(AdmissionReport {
        config: config.clone(),
        admitted: server.active_connections() as u64,
        shed: server.stats().connections_shed(),
        shed_replies_seen,
        accept_failures: server.stats().accept_failures(),
        elapsed: started.elapsed(),
    })
}

/// Shape of one bounded-queue saturation run (virtual time).
#[derive(Debug, Clone)]
pub struct SaturationConfig {
    /// Requests offered to the server.
    pub arrivals: usize,
    /// Fixed spacing between arrivals.
    pub interarrival: Duration,
    /// Fixed per-request service time. Saturation is
    /// `service / interarrival`; 2× saturation means arrivals come twice
    /// as fast as the server drains them.
    pub service: Duration,
    /// Admission bound on requests outstanding (queued + executing) —
    /// the model twin of [`ReactorConfig::max_queue_depth`]. `0` is
    /// unbounded.
    pub max_queue_depth: usize,
}

/// What one saturation run did. Everything is deterministic: the model
/// runs in virtual time and the quantiles come from the deterministic
/// [`brmi_obs`] histogram.
#[derive(Debug, Clone)]
pub struct SaturationReport {
    /// The configuration that produced this report.
    pub config: SaturationConfig,
    /// Requests admitted and served.
    pub admitted: u64,
    /// Requests shed at arrival because the queue was at its bound.
    pub shed: u64,
    /// Median admitted-request latency (arrival → completion), nanos.
    pub p50_nanos: u64,
    /// 99th-percentile admitted-request latency, nanos.
    pub p99_nanos: u64,
    /// Worst admitted-request latency, nanos.
    pub max_nanos: u64,
}

/// Runs the single-server FIFO admission model: arrivals every
/// `interarrival`, service `service` each, and the reactor's
/// queue-depth shedding rule applied at arrival time. Latency of every
/// admitted request is recorded into a [`Histogram`] and reported as
/// p50/p99 through the same deterministic quantile rule the live
/// metrics use.
pub fn run_saturation_model(config: &SaturationConfig) -> SaturationReport {
    let interarrival = config.interarrival.as_nanos() as u64;
    let service = (config.service.as_nanos() as u64).max(1);
    let latency = Histogram::new();
    // The virtual instant the server finishes everything admitted so far;
    // the backlog at an arrival is whatever of it lies in the future.
    let mut free_at = 0u64;
    let mut admitted = 0u64;
    let mut shed = 0u64;
    for i in 0..config.arrivals as u64 {
        let now = i * interarrival;
        let backlog = free_at.saturating_sub(now);
        let depth = backlog.div_ceil(service);
        if config.max_queue_depth > 0 && depth >= config.max_queue_depth as u64 {
            shed += 1;
            continue;
        }
        let finish = free_at.max(now) + service;
        latency.record(finish - now);
        free_at = finish;
        admitted += 1;
    }
    let snapshot = latency.snapshot();
    SaturationReport {
        config: config.clone(),
        admitted,
        shed,
        p50_nanos: snapshot.quantile(0.50),
        p99_nanos: snapshot.quantile(0.99),
        max_nanos: snapshot.max,
    }
}

/// One sweep point of [`run_adaptive_convergence`].
#[derive(Debug, Clone)]
pub struct ConvergencePoint {
    /// Arrival spacing driven at the relay.
    pub interarrival: Duration,
    /// The `relay_adaptive_delay_nanos` gauge after the arrivals — what
    /// the live relay actually tuned to.
    pub tuned_delay_nanos: u64,
    /// The closed-form optimum for this interarrival — what it should
    /// tune to.
    pub expected_delay_nanos: u64,
}

/// Origin double for the convergence sweep: answers every (super-)batch
/// with one `Ok(Null)` per call.
struct NullOrigin;

impl NullOrigin {
    fn respond(request: &BatchRequest) -> BatchResponse {
        BatchResponse {
            session: None,
            slots: request
                .calls
                .iter()
                .map(|call| (call.seq, SlotOutcome::Ok(Value::Null)))
                .collect(),
            cursors: vec![],
            restarts: 0,
        }
    }
}

impl RequestHandler for NullOrigin {
    fn handle(&self, frame: Frame) -> Frame {
        match frame {
            Frame::BatchCall(request) => Frame::BatchReturn(NullOrigin::respond(&request)),
            Frame::SuperBatchCall(batches) => Frame::SuperBatchReturn(
                batches
                    .iter()
                    .map(|request| Ok(NullOrigin::respond(request)))
                    .collect(),
            ),
            _ => Frame::Released,
        }
    }
}

fn noop_batch() -> Frame {
    Frame::BatchCall(BatchRequest {
        session: None,
        calls: vec![InvocationData {
            seq: CallSeq(0),
            target: Target::Remote(ObjectId(1)),
            method: "noop".into(),
            args: vec![],
            cursor: None,
            opens_cursor: false,
        }],
        policy: PolicySpec::Abort,
        keep_session: false,
    })
}

/// Drives a fresh adaptive [`BatchRelay`] per sweep point with
/// `arrivals_per_point` batches spaced `interarrival` apart on a
/// [`VirtualClock`], and reports the tuned window against the closed
/// form. Constant spacing makes the EWMA exact — the gauge must land on
/// the optimum to the nanosecond, whatever the flusher's grouping did.
///
/// # Panics
///
/// Panics when a relayed batch fails; the in-process origin never does.
pub fn run_adaptive_convergence(
    adaptive: AdaptivePolicy,
    interarrivals: &[Duration],
    arrivals_per_point: usize,
) -> Vec<ConvergencePoint> {
    interarrivals
        .iter()
        .map(|&interarrival| {
            let upstream = Arc::new(InProcTransport::new(Arc::new(NullOrigin)));
            let clock = VirtualClock::new();
            let relay = BatchRelay::with_time_source(
                upstream,
                RelayPolicy::builder()
                    .max_coalesced_calls(1_000_000)
                    .adaptive(adaptive)
                    .build(),
                clock.clone(),
            );
            let stats = relay.stats();
            let mut workers = Vec::with_capacity(arrivals_per_point);
            for k in 0..arrivals_per_point {
                if k > 0 {
                    clock.advance(interarrival);
                }
                let relay = Arc::clone(&relay);
                workers.push(std::thread::spawn(move || relay.handle(noop_batch())));
                // The batch counter bumps at enqueue (before the worker
                // blocks on its reply), so this spin leaves the arrival
                // spacing entirely to the virtual clock.
                while stats.batches_relayed() < (k + 1) as u64 {
                    std::thread::yield_now();
                }
            }
            let tuned_delay_nanos = stats.adaptive_delay_nanos();
            // Flush stragglers so every worker joins: whatever the tuned
            // window, it cannot exceed the upper clamp.
            clock.advance(adaptive.max_delay + Duration::from_nanos(1));
            for worker in workers {
                match worker.join().expect("relay worker panicked") {
                    Frame::BatchReturn(_) => {}
                    other => panic!("expected a batch return, got {other:?}"),
                }
            }
            relay.shutdown();
            ConvergencePoint {
                interarrival,
                tuned_delay_nanos,
                expected_delay_nanos: adaptive.tuned_delay_nanos(interarrival.as_nanos() as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_counts_are_exact() {
        let report = run_admission_stress(&AdmissionConfig {
            offered: 12,
            max_connections: 5,
        })
        .unwrap();
        assert_eq!(report.admitted, 5);
        assert_eq!(report.shed, 7);
        assert_eq!(report.shed_replies_seen, 7);
        assert_eq!(report.accept_failures, 0);
    }

    #[test]
    fn admission_under_the_cap_sheds_nothing() {
        let report = run_admission_stress(&AdmissionConfig {
            offered: 3,
            max_connections: 8,
        })
        .unwrap();
        assert_eq!(report.admitted, 3);
        assert_eq!(report.shed, 0);
        assert_eq!(report.shed_replies_seen, 0);
    }

    #[test]
    fn bounded_queue_keeps_p99_at_the_bound_under_2x_saturation() {
        let service = Duration::from_micros(100);
        let bounded = run_saturation_model(&SaturationConfig {
            arrivals: 10_000,
            interarrival: service / 2,
            service,
            max_queue_depth: 64,
        });
        let unbounded = run_saturation_model(&SaturationConfig {
            arrivals: 10_000,
            interarrival: service / 2,
            service,
            max_queue_depth: 0,
        });
        // The unbounded queue diverges linearly; the bounded one sheds
        // half the offered load and keeps the tail at depth × service.
        assert_eq!(unbounded.shed, 0);
        assert!(unbounded.p99_nanos > 10 * bounded.p99_nanos);
        assert!(bounded.shed > 0);
        assert!(bounded.max_nanos <= 64 * service.as_nanos() as u64);
        // Offered load is conserved: every request was served or shed.
        assert_eq!(bounded.admitted + bounded.shed, 10_000);
        // Deterministic to the integer across runs.
        let again = run_saturation_model(&bounded.config);
        assert_eq!(again.shed, bounded.shed);
        assert_eq!(again.p99_nanos, bounded.p99_nanos);
    }

    #[test]
    fn adaptive_gauge_lands_on_the_closed_form() {
        let points = run_adaptive_convergence(
            AdaptivePolicy::default(),
            &[
                Duration::from_micros(100),
                Duration::from_micros(500),
                Duration::from_millis(2),
            ],
            8,
        );
        for point in points {
            assert_eq!(
                point.tuned_delay_nanos, point.expected_delay_nanos,
                "at interarrival {:?}",
                point.interarrival
            );
        }
    }
}
