//! Many-client stress workload against the reactor transport.
//!
//! The paper's claim is that explicit batching amortizes round-trip
//! latency across many calls; this module supplies the missing half of
//! that argument at scale — *many concurrent clients* driving batches at
//! one server. N client threads share one [`TcpPool`] (each round trip
//! checks out its own pooled socket) against a [`ReactorServer`] running a
//! fixed number of event-loop threads, so the server multiplexes every
//! connection without a thread per client.
//!
//! The workload is deterministic by construction — fixed batch shapes over
//! the no-op service — so the *count* outputs of a run (round trips, calls
//! executed, bytes on the wire) are exactly reproducible and serve as the
//! committed baseline for the `reactor_stress` bench binary; wall-clock
//! throughput is reported alongside for humans.
//!
//! [`run_mux_stress`] is the client-side mirror: the *same* caller
//! population served first by one multiplexed socket
//! ([`MuxClient`](brmi_transport::mux::MuxClient), bursts coalesced into
//! single vectored writes) and then by the [`TcpPool`] baseline (one
//! socket and one write syscall per concurrent caller and call). Its
//! socket and write-syscall counts are deterministic and form the
//! committed `BENCH_mux.json` baseline.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use brmi::BatchExecutor;
use brmi_obs::{MetricsSnapshot, Registry, Snapshot};
use brmi_rmi::RmiServer;
use brmi_rmi::{Connection, RemoteRef};
use brmi_transport::fault::{FaultPlan, FaultPoint, FaultyTransport};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::mux::MuxClient;
use brmi_transport::pool::TcpPool;
use brmi_transport::reactor::{ReactorConfig, ReactorServer};
use brmi_transport::retry::{RetryPolicy, RetryTransport};
use brmi_transport::{Transport, TransportStats};
use brmi_wire::protocol::Frame;
use brmi_wire::{ObjectId, RemoteError};

use crate::noop::{brmi_noops, NoopServer, NoopSkeleton};

/// Shape of one stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Concurrent client threads (each runs its own batch loop).
    pub clients: usize,
    /// Batches flushed per client.
    pub batches_per_client: usize,
    /// No-op calls folded into each batch (one round trip per batch).
    pub calls_per_batch: usize,
    /// Reactor event-loop threads serving all connections.
    pub reactor_threads: usize,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            clients: 32,
            batches_per_client: 25,
            calls_per_batch: 20,
            reactor_threads: 2,
        }
    }
}

/// What one stress run did. The count fields are deterministic for a given
/// [`StressConfig`]; `elapsed` is wall clock.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// The configuration that produced this report.
    pub config: StressConfig,
    /// Client-observed round trips (per-client registry lookup + one per
    /// batch flush).
    pub round_trips: u64,
    /// No-op invocations the server actually executed.
    pub calls_executed: u64,
    /// Request bytes on the wire (client side, payloads without prefixes).
    pub bytes_sent: u64,
    /// Response bytes on the wire.
    pub bytes_received: u64,
    /// Unified registry snapshot of the run's transport, reactor and
    /// executor metrics — deterministic fields only (counters and
    /// gauges), ready for `--metrics-json`.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the client phase.
    pub elapsed: Duration,
}

impl StressReport {
    /// Remote calls executed per wall-clock second.
    pub fn calls_per_sec(&self) -> f64 {
        self.calls_executed as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Round trips completed per wall-clock second.
    pub fn round_trips_per_sec(&self) -> f64 {
        self.round_trips as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Runs `config`'s worth of concurrent clients against a fresh reactor
/// server and reports what happened.
///
/// # Errors
///
/// Returns the first client error (transport or batch failure); a healthy
/// run never fails.
///
/// # Panics
///
/// Panics when a client thread itself panics.
pub fn run_reactor_stress(config: &StressConfig) -> Result<StressReport, RemoteError> {
    let server = RmiServer::new();
    let executor = BatchExecutor::install(&server);
    let noop = NoopServer::new();
    server
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .expect("fresh server bind");
    let reactor = ReactorServer::bind_with(
        "127.0.0.1:0",
        server.clone() as Arc<dyn brmi_transport::RequestHandler>,
        ReactorConfig {
            reactor_threads: config.reactor_threads,
            dispatch_workers: 0,
            ..ReactorConfig::default()
        },
    )?;

    let pool = Arc::new(TcpPool::connect(reactor.local_addr())?);
    let stats = pool.stats();
    let registry = Registry::new();
    pool.register_metrics(&registry);
    reactor.register_metrics(&registry);
    executor.register_metrics(&registry);
    server.reply_cache().register_metrics(&registry);

    // All clients arm before any starts, so the measured window really has
    // `clients` concurrent request streams.
    let start_gate = Arc::new(Barrier::new(config.clients + 1));
    let mut first_error: Option<RemoteError> = None;

    let handles: Vec<_> = (0..config.clients)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&start_gate);
            let batches = config.batches_per_client;
            let calls = config.calls_per_batch;
            std::thread::spawn(move || -> Result<(), RemoteError> {
                let conn = Connection::new(pool);
                let root: RemoteRef = conn.lookup("noop")?;
                gate.wait();
                for _ in 0..batches {
                    brmi_noops(&conn, &root, calls)?;
                }
                Ok(())
            })
        })
        .collect();

    start_gate.wait();
    let started = Instant::now();
    for handle in handles {
        match handle.join().expect("stress client panicked") {
            Ok(()) => {}
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    let elapsed = started.elapsed();

    if let Some(err) = first_error {
        return Err(err);
    }

    Ok(StressReport {
        config: config.clone(),
        round_trips: stats.requests(),
        calls_executed: noop.calls(),
        bytes_sent: stats.bytes_sent(),
        bytes_received: stats.bytes_received(),
        metrics: registry.snapshot().deterministic_only(),
        elapsed,
    })
}

/// Shape of one mux-vs-pool stress run.
#[derive(Debug, Clone)]
pub struct MuxStressConfig {
    /// Concurrent caller threads sharing the one mux socket (and, in the
    /// baseline phase, the connection pool).
    pub callers: usize,
    /// Call bursts each caller issues.
    pub bursts_per_caller: usize,
    /// No-op calls per burst — one mux frame each, pipelined; the pool
    /// baseline pays one full round trip each.
    pub calls_per_burst: usize,
    /// Origin reactor event-loop threads.
    pub reactor_threads: usize,
}

impl Default for MuxStressConfig {
    fn default() -> Self {
        MuxStressConfig {
            callers: 32,
            bursts_per_caller: 8,
            calls_per_burst: 16,
            reactor_threads: 2,
        }
    }
}

/// What one mux-vs-pool run did. Socket, frame and write-syscall counts
/// are deterministic for a given config; the elapsed fields are wall
/// clock.
#[derive(Debug, Clone)]
pub struct MuxStressReport {
    /// The configuration that produced this report.
    pub config: MuxStressConfig,
    /// No-op invocations executed in each phase (mux and pool runs execute
    /// the same count).
    pub calls_executed: u64,
    /// Request frames the mux client sent (lookup + one per call).
    pub mux_frames: u64,
    /// Write syscalls the mux client performed: the lookup plus one
    /// vectored write per burst — `calls_per_burst` frames per syscall.
    pub mux_write_syscalls: u64,
    /// Sockets the mux phase held to the origin (always 1).
    pub mux_sockets: u64,
    /// Request bytes the mux client sent (payloads, excluding envelopes).
    pub mux_bytes_sent: u64,
    /// Response bytes the mux client received.
    pub mux_bytes_received: u64,
    /// Round trips the pool baseline performed (lookup + one per call) —
    /// also its write-syscall count, at one vectored write per frame.
    pub pool_round_trips: u64,
    /// Sockets the pool baseline needs for `callers` concurrent callers
    /// (one each — the quantity the mux collapses to 1).
    pub pool_sockets: u64,
    /// Wall-clock duration of the mux caller phase.
    pub elapsed_mux: Duration,
    /// Wall-clock duration of the pool caller phase.
    pub elapsed_pool: Duration,
}

impl MuxStressReport {
    /// Write syscalls per executed call on the mux path.
    pub fn mux_syscalls_per_call(&self) -> f64 {
        self.mux_write_syscalls as f64 / (self.calls_executed as f64).max(1.0)
    }

    /// Write syscalls per executed call on the pool path (1.0: one
    /// vectored write per round trip).
    pub fn pool_syscalls_per_call(&self) -> f64 {
        self.pool_round_trips as f64 / (self.calls_executed as f64).max(1.0)
    }

    /// Mux-phase calls per wall-clock second.
    pub fn mux_calls_per_sec(&self) -> f64 {
        self.calls_executed as f64 / self.elapsed_mux.as_secs_f64().max(f64::EPSILON)
    }

    /// Pool-phase calls per wall-clock second.
    pub fn pool_calls_per_sec(&self) -> f64 {
        self.calls_executed as f64 / self.elapsed_pool.as_secs_f64().max(f64::EPSILON)
    }
}

/// Binds a fresh reactor-served no-op origin for one phase.
fn noop_origin(reactor_threads: usize) -> Result<(ReactorServer, Arc<NoopServer>), RemoteError> {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let noop = NoopServer::new();
    server
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .expect("fresh server bind");
    let reactor = ReactorServer::bind_with(
        "127.0.0.1:0",
        server,
        ReactorConfig {
            reactor_threads,
            dispatch_workers: 0,
            ..ReactorConfig::default()
        },
    )?;
    Ok((reactor, noop))
}

/// Joins the caller threads, surfacing the first error (panics propagate).
fn join_callers(
    handles: Vec<std::thread::JoinHandle<Result<(), RemoteError>>>,
) -> Result<(), RemoteError> {
    let mut first_error = None;
    for handle in handles {
        if let Err(err) = handle.join().expect("mux stress caller panicked") {
            first_error = first_error.or(Some(err));
        }
    }
    first_error.map_or(Ok(()), Err)
}

/// Runs the same caller population over one multiplexed socket and then
/// over the pooled baseline, against fresh reactor origins, and reports
/// the socket/syscall economics of each.
///
/// # Errors
///
/// Returns the first caller error; a healthy run never fails.
///
/// # Panics
///
/// Panics when a caller thread itself panics.
pub fn run_mux_stress(config: &MuxStressConfig) -> Result<MuxStressReport, RemoteError> {
    let noop_call = |target: ObjectId| Frame::Call {
        target,
        method: "noop".into(),
        args: vec![],
    };
    let expect_return = |frame: Frame| -> Result<(), RemoteError> {
        match frame {
            Frame::Return(_) => Ok(()),
            Frame::Error(env) => Err(RemoteError::from(&env)),
            other => Err(RemoteError::transport(format!(
                "unexpected reply frame: {}",
                other.kind_name()
            ))),
        }
    };

    // Phase 1: every caller multiplexed over ONE socket, bursts pipelined.
    let (mux_reactor, mux_noop) = noop_origin(config.reactor_threads)?;
    let mux = MuxClient::connect(mux_reactor.local_addr())?;
    let target = Connection::new(mux.clone() as Arc<dyn Transport>)
        .lookup("noop")?
        .id();
    let mux_sockets = mux_reactor.active_connections() as u64;
    let gate = Arc::new(Barrier::new(config.callers + 1));
    let handles: Vec<_> = (0..config.callers)
        .map(|_| {
            let mux = Arc::clone(&mux);
            let gate = Arc::clone(&gate);
            let (bursts, calls) = (config.bursts_per_caller, config.calls_per_burst);
            std::thread::spawn(move || -> Result<(), RemoteError> {
                let frames: Vec<Frame> = (0..calls).map(|_| noop_call(target)).collect();
                gate.wait();
                for _ in 0..bursts {
                    // One vectored write ships the whole burst; replies are
                    // claimed as they land in the per-call slots.
                    for pending in mux.call_burst(&frames)? {
                        expect_return(pending.wait()?)?;
                    }
                }
                Ok(())
            })
        })
        .collect();
    gate.wait();
    let started = Instant::now();
    join_callers(handles)?;
    let elapsed_mux = started.elapsed();
    let mux_stats: Arc<TransportStats> = mux.stats();
    let (mux_frames, mux_write_syscalls) = (mux.frames_sent(), mux.write_syscalls());
    let (mux_bytes_sent, mux_bytes_received) = (mux_stats.bytes_sent(), mux_stats.bytes_received());
    let mux_calls = mux_noop.calls();
    drop(mux);
    drop(mux_reactor);

    // Phase 2: the pooled baseline — same workload, one socket and one
    // write syscall per concurrent caller and call.
    let (pool_reactor, pool_noop) = noop_origin(config.reactor_threads)?;
    let pool = Arc::new(TcpPool::connect(pool_reactor.local_addr())?);
    let pool_stats = pool.stats();
    let target = Connection::new(pool.clone() as Arc<dyn Transport>)
        .lookup("noop")?
        .id();
    let gate = Arc::new(Barrier::new(config.callers + 1));
    let handles: Vec<_> = (0..config.callers)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&gate);
            let (bursts, calls) = (config.bursts_per_caller, config.calls_per_burst);
            std::thread::spawn(move || -> Result<(), RemoteError> {
                gate.wait();
                for _ in 0..bursts * calls {
                    expect_return(pool.request(noop_call(target))?)?;
                }
                Ok(())
            })
        })
        .collect();
    gate.wait();
    let started = Instant::now();
    join_callers(handles)?;
    let elapsed_pool = started.elapsed();
    let pool_calls = pool_noop.calls();
    debug_assert_eq!(mux_calls, pool_calls, "phases run identical workloads");

    Ok(MuxStressReport {
        config: config.clone(),
        calls_executed: mux_calls,
        mux_frames,
        mux_write_syscalls,
        mux_sockets,
        mux_bytes_sent,
        mux_bytes_received,
        pool_round_trips: pool_stats.requests(),
        pool_sockets: config.callers as u64,
        elapsed_mux,
        elapsed_pool,
    })
}

/// Shape of one keyed-retry goodput run.
#[derive(Debug, Clone)]
pub struct RetryStressConfig {
    /// Clients run one after another — sequencing keeps every count
    /// deterministic, since each client owns its seeded lossy link.
    pub clients: usize,
    /// Keyed batches flushed per client.
    pub batches_per_client: usize,
    /// No-op calls folded into each batch.
    pub calls_per_batch: usize,
    /// Drop probability per request and per reply, in thousandths.
    pub drop_per_mille: u16,
    /// Base seed; each client derives its own request and reply drop
    /// schedules from it.
    pub seed: u64,
}

impl Default for RetryStressConfig {
    fn default() -> Self {
        RetryStressConfig {
            clients: 8,
            batches_per_client: 16,
            calls_per_batch: 10,
            drop_per_mille: 100,
            seed: 0x5EED_CAFE,
        }
    }
}

/// What one keyed-retry run did. Every count field is deterministic for a
/// given [`RetryStressConfig`]; `elapsed` is wall clock.
#[derive(Debug, Clone)]
pub struct RetryStressReport {
    /// The configuration that produced this report.
    pub config: RetryStressConfig,
    /// No-op invocations the origin actually executed — equal to
    /// `clients × batches × calls` at *every* drop rate, which is the
    /// exactly-once story in one number.
    pub calls_executed: u64,
    /// Faults injected across both lossy layers (requests and replies).
    pub injected_drops: u64,
    /// Re-sends the clients' retry layers performed (excludes first
    /// attempts).
    pub client_resends: u64,
    /// Keyed frames the origin executed fresh.
    pub origin_executions: u64,
    /// Duplicate keyed frames the origin answered from its reply cache.
    pub origin_replays: u64,
    /// Unified registry snapshot of the origin-side executor and replay
    /// metrics — deterministic fields only, ready for `--metrics-json`.
    pub metrics: MetricsSnapshot,
    /// Wall-clock duration of the client phase.
    pub elapsed: Duration,
}

impl RetryStressReport {
    /// Successfully executed calls per wall-clock second — goodput, which
    /// degrades gracefully with the drop rate while `calls_executed` stays
    /// exact.
    pub fn goodput_calls_per_sec(&self) -> f64 {
        self.calls_executed as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Re-sends per executed call (the retry overhead ratio).
    pub fn resend_overhead(&self) -> f64 {
        self.client_resends as f64 / (self.calls_executed as f64).max(1.0)
    }
}

/// Runs keyed clients over seeded lossy links with transparent retries
/// against one origin, and reports exactly-once accounting.
///
/// Each client gets its own request-drop and reply-drop layers (seeded
/// from `config.seed` and the client index) under a
/// [`RetryTransport`]; the origin's reply cache absorbs every re-sent
/// duplicate. Clients run sequentially so all counters are exactly
/// reproducible and can serve as a committed bench baseline.
///
/// # Errors
///
/// Returns the first client error. With the 32-attempt budget a round trip
/// failing outright needs ~2⁻³² of bad luck per mille configured, so a
/// healthy run never fails.
pub fn run_retry_stress(config: &RetryStressConfig) -> Result<RetryStressReport, RemoteError> {
    let server = RmiServer::new();
    let executor = BatchExecutor::install(&server);
    let noop = NoopServer::new();
    server
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .expect("fresh server bind");
    let registry = Registry::new();
    executor.register_metrics(&registry);
    server.reply_cache().register_metrics(&registry);

    let mut injected_drops = 0u64;
    let mut client_resends = 0u64;
    let started = Instant::now();
    for client in 0..config.clients {
        let seed = config
            .seed
            .wrapping_add(client as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let requests = FaultyTransport::with_fault_point(
            InProcTransport::new(server.clone()),
            FaultPlan::Seeded {
                seed,
                drop_per_mille: config.drop_per_mille,
            },
            FaultPoint::Request,
        );
        let replies = FaultyTransport::with_fault_point(
            Arc::clone(&requests) as Arc<dyn Transport>,
            FaultPlan::Seeded {
                seed: seed.rotate_left(19) ^ 0xBAD5_EED0_F00D_CAFE,
                drop_per_mille: config.drop_per_mille,
            },
            FaultPoint::Reply,
        );
        let retried = RetryTransport::over(
            Arc::clone(&replies) as Arc<dyn Transport>,
            RetryPolicy::immediate(32),
        );
        let conn = Connection::new_keyed(Arc::clone(&retried) as Arc<dyn Transport>);
        let root = conn.lookup("noop")?;
        for _ in 0..config.batches_per_client {
            brmi_noops(&conn, &root, config.calls_per_batch)?;
        }
        injected_drops += requests.injected() + replies.injected();
        client_resends += retried.retries();
    }
    let elapsed = started.elapsed();

    Ok(RetryStressReport {
        config: config.clone(),
        calls_executed: noop.calls(),
        injected_drops,
        client_resends,
        origin_executions: server.reply_cache().executions(),
        origin_replays: server.reply_cache().replays(),
        metrics: registry.snapshot().deterministic_only(),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_and_deterministic() {
        let config = StressConfig {
            clients: 4,
            batches_per_client: 3,
            calls_per_batch: 5,
            reactor_threads: 2,
        };
        let a = run_reactor_stress(&config).unwrap();
        assert_eq!(a.calls_executed, 4 * 3 * 5);
        // One lookup per client plus one round trip per batch.
        assert_eq!(a.round_trips, 4 + 4 * 3);
        // The workload is fixed, so the wire traffic is bit-identical
        // across runs — the property the committed bench baseline rests on.
        let b = run_reactor_stress(&config).unwrap();
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.bytes_received, b.bytes_received);
    }

    #[test]
    fn single_client_degenerate_case_works() {
        let config = StressConfig {
            clients: 1,
            batches_per_client: 2,
            calls_per_batch: 1,
            reactor_threads: 1,
        };
        let report = run_reactor_stress(&config).unwrap();
        assert_eq!(report.calls_executed, 2);
        assert_eq!(report.round_trips, 3);
        assert!(report.calls_per_sec() > 0.0);
        assert!(report.round_trips_per_sec() > 0.0);
    }

    #[test]
    fn mux_counts_are_exact_and_deterministic() {
        let config = MuxStressConfig {
            callers: 4,
            bursts_per_caller: 3,
            calls_per_burst: 5,
            reactor_threads: 2,
        };
        let a = run_mux_stress(&config).unwrap();
        assert_eq!(a.calls_executed, 4 * 3 * 5);
        // One lookup frame plus one frame per call, over exactly one
        // socket; one vectored write per burst (plus the lookup's).
        assert_eq!(a.mux_frames, 1 + 4 * 3 * 5);
        assert_eq!(a.mux_write_syscalls, 1 + 4 * 3);
        assert_eq!(a.mux_sockets, 1);
        // The pool baseline pays one round trip (= one vectored write) per
        // call and one socket per concurrent caller.
        assert_eq!(a.pool_round_trips, 1 + 4 * 3 * 5);
        assert_eq!(a.pool_sockets, 4);
        assert!(a.mux_syscalls_per_call() < a.pool_syscalls_per_call());
        // Fixed workload ⇒ bit-identical wire traffic across runs — the
        // property the committed bench baseline rests on.
        let b = run_mux_stress(&config).unwrap();
        assert_eq!(a.mux_bytes_sent, b.mux_bytes_sent);
        assert_eq!(a.mux_bytes_received, b.mux_bytes_received);
        assert_eq!(a.mux_write_syscalls, b.mux_write_syscalls);
    }

    #[test]
    fn retry_stress_executes_exactly_once_under_drops() {
        let config = RetryStressConfig {
            clients: 3,
            batches_per_client: 4,
            calls_per_batch: 5,
            drop_per_mille: 200,
            seed: 42,
        };
        let a = run_retry_stress(&config).unwrap();
        // The exactly-once headline: drops never lose or duplicate a call.
        assert_eq!(a.calls_executed, 3 * 4 * 5);
        // One keyed lookup plus one keyed batch per flush, each executed
        // exactly once no matter how often it was re-sent.
        assert_eq!(a.origin_executions, 3 * (1 + 4));
        assert!(a.injected_drops > 0, "200‰ over 15 round trips must strike");
        // Every dropped *keyed* frame is answered by exactly one re-send;
        // dropped best-effort unkeyed frames (reference releases) are
        // counted but not retried.
        assert!(a.client_resends > 0);
        assert!(a.client_resends <= a.injected_drops);
        // Seeded schedules ⇒ bit-identical counts across runs — the
        // property the committed bench baseline rests on.
        let b = run_retry_stress(&config).unwrap();
        assert_eq!(a.injected_drops, b.injected_drops);
        assert_eq!(a.client_resends, b.client_resends);
        assert_eq!(a.origin_replays, b.origin_replays);
    }

    #[test]
    fn retry_stress_clean_link_never_retries() {
        let config = RetryStressConfig {
            clients: 2,
            batches_per_client: 3,
            calls_per_batch: 4,
            drop_per_mille: 0,
            seed: 7,
        };
        let report = run_retry_stress(&config).unwrap();
        assert_eq!(report.calls_executed, 2 * 3 * 4);
        assert_eq!(report.injected_drops, 0);
        assert_eq!(report.client_resends, 0);
        assert_eq!(report.origin_replays, 0);
        assert_eq!(report.resend_overhead(), 0.0);
        assert!(report.goodput_calls_per_sec() > 0.0);
    }

    #[test]
    fn mux_single_caller_degenerate_case_works() {
        let config = MuxStressConfig {
            callers: 1,
            bursts_per_caller: 2,
            calls_per_burst: 3,
            reactor_threads: 1,
        };
        let report = run_mux_stress(&config).unwrap();
        assert_eq!(report.calls_executed, 6);
        assert_eq!(report.mux_write_syscalls, 1 + 2);
        assert!(report.mux_calls_per_sec() > 0.0);
        assert!(report.pool_calls_per_sec() > 0.0);
    }
}
