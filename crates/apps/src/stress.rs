//! Many-client stress workload against the reactor transport.
//!
//! The paper's claim is that explicit batching amortizes round-trip
//! latency across many calls; this module supplies the missing half of
//! that argument at scale — *many concurrent clients* driving batches at
//! one server. N client threads share one [`TcpPool`] (each round trip
//! checks out its own pooled socket) against a [`ReactorServer`] running a
//! fixed number of event-loop threads, so the server multiplexes every
//! connection without a thread per client.
//!
//! The workload is deterministic by construction — fixed batch shapes over
//! the no-op service — so the *count* outputs of a run (round trips, calls
//! executed, bytes on the wire) are exactly reproducible and serve as the
//! committed baseline for the `reactor_stress` bench binary; wall-clock
//! throughput is reported alongside for humans.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use brmi::BatchExecutor;
use brmi_rmi::RmiServer;
use brmi_rmi::{Connection, RemoteRef};
use brmi_transport::pool::TcpPool;
use brmi_transport::reactor::{ReactorConfig, ReactorServer};
use brmi_wire::RemoteError;

use crate::noop::{brmi_noops, NoopServer, NoopSkeleton};

/// Shape of one stress run.
#[derive(Debug, Clone)]
pub struct StressConfig {
    /// Concurrent client threads (each runs its own batch loop).
    pub clients: usize,
    /// Batches flushed per client.
    pub batches_per_client: usize,
    /// No-op calls folded into each batch (one round trip per batch).
    pub calls_per_batch: usize,
    /// Reactor event-loop threads serving all connections.
    pub reactor_threads: usize,
}

impl Default for StressConfig {
    fn default() -> Self {
        StressConfig {
            clients: 32,
            batches_per_client: 25,
            calls_per_batch: 20,
            reactor_threads: 2,
        }
    }
}

/// What one stress run did. The count fields are deterministic for a given
/// [`StressConfig`]; `elapsed` is wall clock.
#[derive(Debug, Clone)]
pub struct StressReport {
    /// The configuration that produced this report.
    pub config: StressConfig,
    /// Client-observed round trips (per-client registry lookup + one per
    /// batch flush).
    pub round_trips: u64,
    /// No-op invocations the server actually executed.
    pub calls_executed: u64,
    /// Request bytes on the wire (client side, payloads without prefixes).
    pub bytes_sent: u64,
    /// Response bytes on the wire.
    pub bytes_received: u64,
    /// Wall-clock duration of the client phase.
    pub elapsed: Duration,
}

impl StressReport {
    /// Remote calls executed per wall-clock second.
    pub fn calls_per_sec(&self) -> f64 {
        self.calls_executed as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Round trips completed per wall-clock second.
    pub fn round_trips_per_sec(&self) -> f64 {
        self.round_trips as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Runs `config`'s worth of concurrent clients against a fresh reactor
/// server and reports what happened.
///
/// # Errors
///
/// Returns the first client error (transport or batch failure); a healthy
/// run never fails.
///
/// # Panics
///
/// Panics when a client thread itself panics.
pub fn run_reactor_stress(config: &StressConfig) -> Result<StressReport, RemoteError> {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let noop = NoopServer::new();
    server
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .expect("fresh server bind");
    let reactor = ReactorServer::bind_with(
        "127.0.0.1:0",
        server,
        ReactorConfig {
            reactor_threads: config.reactor_threads,
        },
    )?;

    let pool = Arc::new(TcpPool::connect(reactor.local_addr())?);
    let stats = pool.stats();

    // All clients arm before any starts, so the measured window really has
    // `clients` concurrent request streams.
    let start_gate = Arc::new(Barrier::new(config.clients + 1));
    let mut first_error: Option<RemoteError> = None;

    let handles: Vec<_> = (0..config.clients)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&start_gate);
            let batches = config.batches_per_client;
            let calls = config.calls_per_batch;
            std::thread::spawn(move || -> Result<(), RemoteError> {
                let conn = Connection::new(pool);
                let root: RemoteRef = conn.lookup("noop")?;
                gate.wait();
                for _ in 0..batches {
                    brmi_noops(&conn, &root, calls)?;
                }
                Ok(())
            })
        })
        .collect();

    start_gate.wait();
    let started = Instant::now();
    for handle in handles {
        match handle.join().expect("stress client panicked") {
            Ok(()) => {}
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    let elapsed = started.elapsed();

    if let Some(err) = first_error {
        return Err(err);
    }

    Ok(StressReport {
        config: config.clone(),
        round_trips: stats.requests(),
        calls_executed: noop.calls(),
        bytes_sent: stats.bytes_sent(),
        bytes_received: stats.bytes_received(),
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_and_deterministic() {
        let config = StressConfig {
            clients: 4,
            batches_per_client: 3,
            calls_per_batch: 5,
            reactor_threads: 2,
        };
        let a = run_reactor_stress(&config).unwrap();
        assert_eq!(a.calls_executed, 4 * 3 * 5);
        // One lookup per client plus one round trip per batch.
        assert_eq!(a.round_trips, 4 + 4 * 3);
        // The workload is fixed, so the wire traffic is bit-identical
        // across runs — the property the committed bench baseline rests on.
        let b = run_reactor_stress(&config).unwrap();
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.bytes_received, b.bytes_received);
    }

    #[test]
    fn single_client_degenerate_case_works() {
        let config = StressConfig {
            clients: 1,
            batches_per_client: 2,
            calls_per_batch: 1,
            reactor_threads: 1,
        };
        let report = run_reactor_stress(&config).unwrap();
        assert_eq!(report.calls_executed, 2);
        assert_eq!(report.round_trips, 3);
        assert!(report.calls_per_sec() > 0.0);
        assert!(report.round_trips_per_sec() > 0.0);
    }
}
