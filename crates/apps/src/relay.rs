//! Multi-tier relay workload: client → edge → origin.
//!
//! The reactor stress scenario ([`crate::stress`]) showed one server
//! multiplexing many batching clients; this module adds the batching
//! *topology* on top — an edge tier ([`BatchRelay`]) between the clients
//! and the origin that coalesces their in-flight batches into upstream
//! super-batches, so the origin sees a handful of large round trips
//! instead of one per client batch.
//!
//! ```text
//!  N clients ──TcpPool──▶ edge (reactor + worker pool + BatchRelay) ──TcpPool──▶ origin (epoll reactor)
//! ```
//!
//! Both tiers run on the epoll reactor. The edge's relaying handler
//! *blocks* until its super-batch completes, so the edge reactor uses
//! worker-pool dispatch ([`ReactorConfig::dispatch_workers`]): socket IO
//! stays on two event-loop threads while the flush-waits park on the
//! dispatch workers — the thread-per-connection edge of the original
//! topology is retired. The workload is deterministic by construction:
//! every client runs the same
//! fixed batch shape and a full wave of `clients` batches is exactly one
//! coalescing budget, so the wire-level counts — origin round trips,
//! super-batches, bytes both hops — are reproducible bit for bit and form
//! the committed `BENCH_relay.json` baseline; wall-clock throughput is
//! reported alongside for humans.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use brmi::BatchExecutor;
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::pool::TcpPool;
use brmi_transport::reactor::{ReactorConfig, ReactorServer};
use brmi_transport::relay::{BatchRelay, RelayPolicy};
use brmi_transport::Transport;
use brmi_wire::RemoteError;

use crate::noop::{brmi_noops, NoopServer, NoopSkeleton};

/// Shape of one relay stress run.
#[derive(Debug, Clone)]
pub struct RelayStressConfig {
    /// Concurrent client threads (each runs its own batch loop).
    pub clients: usize,
    /// Batches flushed per client.
    pub batches_per_client: usize,
    /// No-op calls folded into each batch.
    pub calls_per_batch: usize,
    /// Origin reactor event-loop threads.
    pub reactor_threads: usize,
    /// Batches the edge coalesces into one origin round trip. The default
    /// ([`RelayStressConfig::default_coalescing`]) is one full wave —
    /// every client's in-flight batch.
    pub coalesce_batches: usize,
    /// Dispatch workers on the edge reactor — the relay handler blocks
    /// until its super-batch completes, so this must cover the peak number
    /// of concurrently waiting batches (the default sizes it to `clients`,
    /// which full-wave coalescing requires).
    pub edge_dispatch_workers: usize,
    /// Upper bound a batch may wait at the edge for company; generous by
    /// default because the workload triggers on the call budget, and a
    /// delay flush would only fire if clients stall pathologically.
    pub max_delay: Duration,
}

impl RelayStressConfig {
    /// A config coalescing one full wave of `clients` batches.
    pub fn default_coalescing(
        clients: usize,
        batches_per_client: usize,
        calls_per_batch: usize,
    ) -> Self {
        RelayStressConfig {
            clients,
            batches_per_client,
            calls_per_batch,
            reactor_threads: 2,
            coalesce_batches: clients,
            edge_dispatch_workers: clients.max(1),
            max_delay: Duration::from_secs(30),
        }
    }
}

/// What one relay stress run did. All count fields are deterministic for a
/// given config; `elapsed` is wall clock.
#[derive(Debug, Clone)]
pub struct RelayStressReport {
    /// The configuration that produced this report.
    pub config: RelayStressConfig,
    /// Round trips the origin actually served (edge-side: forwarded
    /// lookups plus super-batch flushes).
    pub origin_round_trips: u64,
    /// Round trips on the client↔edge hop (lookups plus one per batch).
    pub edge_round_trips: u64,
    /// Upstream flushes the relay performed (super-batches + singletons).
    pub upstream_flushes: u64,
    /// Largest number of batches coalesced into one origin round trip.
    pub largest_group: u64,
    /// No-op invocations the origin executed.
    pub calls_executed: u64,
    /// Request bytes on the edge→origin hop.
    pub upstream_bytes_sent: u64,
    /// Response bytes on the edge→origin hop.
    pub upstream_bytes_received: u64,
    /// Request bytes on the client→edge hop.
    pub edge_bytes_sent: u64,
    /// Wall-clock duration of the client phase.
    pub elapsed: Duration,
}

impl RelayStressReport {
    /// Origin round trips a direct (relay-less) run of the same workload
    /// costs: one lookup per client plus one per batch flush.
    pub fn direct_origin_round_trips(&self) -> u64 {
        (self.config.clients + self.config.clients * self.config.batches_per_client) as u64
    }

    /// How many times fewer origin round trips the relay needed than the
    /// direct topology.
    pub fn round_trip_reduction(&self) -> f64 {
        self.direct_origin_round_trips() as f64 / (self.origin_round_trips as f64).max(1.0)
    }

    /// Remote calls executed per wall-clock second.
    pub fn calls_per_sec(&self) -> f64 {
        self.calls_executed as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Runs `config`'s worth of clients through an edge relay against a fresh
/// reactor origin and reports what happened.
///
/// # Errors
///
/// Returns the first client error (transport or batch failure); a healthy
/// run never fails.
///
/// # Panics
///
/// Panics when a client thread itself panics.
pub fn run_relay_stress(config: &RelayStressConfig) -> Result<RelayStressReport, RemoteError> {
    // Origin: reactor-served RMI server with batching installed.
    let origin = RmiServer::new();
    BatchExecutor::install(&origin);
    let noop = NoopServer::new();
    origin
        .bind("noop", NoopSkeleton::remote_arc(noop.clone()))
        .expect("fresh origin bind");
    let reactor = ReactorServer::bind_with(
        "127.0.0.1:0",
        origin,
        ReactorConfig {
            reactor_threads: config.reactor_threads,
            dispatch_workers: 0,
            ..ReactorConfig::default()
        },
    )?;

    // Edge: a relay over a pooled upstream, served by a second reactor
    // whose worker pool absorbs the blocking flush-waits.
    let upstream = Arc::new(TcpPool::connect(reactor.local_addr())?);
    let upstream_stats = upstream.stats();
    let relay = BatchRelay::new(
        Arc::clone(&upstream) as Arc<dyn Transport>,
        RelayPolicy::builder()
            .max_coalesced_calls(config.coalesce_batches.max(1) * config.calls_per_batch.max(1))
            .max_delay(config.max_delay)
            .build(),
    );
    let mut edge = ReactorServer::bind_with(
        "127.0.0.1:0",
        relay.clone(),
        ReactorConfig {
            reactor_threads: 2,
            dispatch_workers: config.edge_dispatch_workers.max(1),
            ..ReactorConfig::default()
        },
    )?;

    // Clients: one pool shared by every thread, against the edge.
    let pool = Arc::new(TcpPool::connect(edge.local_addr())?);
    let edge_stats = pool.stats();

    let start_gate = Arc::new(Barrier::new(config.clients + 1));
    let mut first_error: Option<RemoteError> = None;

    let handles: Vec<_> = (0..config.clients)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let gate = Arc::clone(&start_gate);
            let batches = config.batches_per_client;
            let calls = config.calls_per_batch;
            std::thread::spawn(move || -> Result<(), RemoteError> {
                let conn = Connection::new(pool);
                let root: RemoteRef = conn.lookup("noop")?;
                gate.wait();
                for _ in 0..batches {
                    brmi_noops(&conn, &root, calls)?;
                }
                Ok(())
            })
        })
        .collect();

    start_gate.wait();
    let started = Instant::now();
    for handle in handles {
        match handle.join().expect("relay stress client panicked") {
            Ok(()) => {}
            Err(err) => first_error = first_error.or(Some(err)),
        }
    }
    let elapsed = started.elapsed();

    let relay_stats = relay.stats();
    let report = RelayStressReport {
        config: config.clone(),
        origin_round_trips: upstream_stats.requests(),
        edge_round_trips: edge_stats.requests(),
        upstream_flushes: relay_stats.upstream_flushes(),
        largest_group: relay_stats.largest_group(),
        calls_executed: noop.calls(),
        upstream_bytes_sent: upstream_stats.bytes_sent(),
        upstream_bytes_received: upstream_stats.bytes_received(),
        edge_bytes_sent: edge_stats.bytes_sent(),
        elapsed,
    };

    // Tear down in topology order: edge listener, relay flusher, origin.
    edge.shutdown();
    relay.shutdown();

    if let Some(err) = first_error {
        return Err(err);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_coalesce_exactly_and_deterministically() {
        let config = RelayStressConfig::default_coalescing(8, 4, 5);
        let a = run_relay_stress(&config).unwrap();
        assert_eq!(a.calls_executed, 8 * 4 * 5);
        // Client↔edge: one lookup per client plus one round trip per batch.
        assert_eq!(a.edge_round_trips, 8 + 8 * 4);
        // Edge↔origin: the forwarded lookups plus one super-batch per wave.
        assert_eq!(a.origin_round_trips, 8 + 4);
        assert_eq!(a.upstream_flushes, 4);
        assert_eq!(a.largest_group, 8);
        assert!(a.round_trip_reduction() > 3.0);
        // Fixed workload ⇒ bit-identical wire traffic across runs — the
        // property the committed bench baseline rests on.
        let b = run_relay_stress(&config).unwrap();
        assert_eq!(a.upstream_bytes_sent, b.upstream_bytes_sent);
        assert_eq!(a.upstream_bytes_received, b.upstream_bytes_received);
        assert_eq!(a.edge_bytes_sent, b.edge_bytes_sent);
    }

    #[test]
    fn single_client_degenerates_to_a_transparent_proxy() {
        let config = RelayStressConfig::default_coalescing(1, 3, 2);
        let report = run_relay_stress(&config).unwrap();
        assert_eq!(report.calls_executed, 6);
        // Lookup + one singleton batch per flush: no coalescing possible,
        // and none pretended.
        assert_eq!(report.origin_round_trips, 1 + 3);
        assert_eq!(report.largest_group, 1);
    }
}
