//! The linked-list traversal micro-benchmark (paper Section 5.3,
//! Figures 7–9): traversing a variable-length chain of remote references.
//!
//! Three client variants reproduce the paper's three measurements:
//! plain RMI (one round trip per hop), BRMI with a single batch (one round
//! trip total), and BRMI flushing after every call (batch size 1 —
//! Figure 9 — which still beats RMI because remote results are never
//! marshalled).

use std::sync::Arc;

use brmi::policy::AbortPolicy;
use brmi::{remote_interface, Batch};
use brmi_rmi::{Connection, RemoteRef};
use brmi_wire::RemoteError;
use parking_lot::Mutex;

remote_interface! {
    /// A linked list of remote nodes (the paper's `RemoteList`).
    pub interface RemoteList {
        /// The successor node; throws `EndOfListException` at the tail.
        #[read_only]
        fn next() -> remote RemoteList;
        /// This node's value.
        #[read_only]
        fn get_value() -> i32;
    }
}

/// Server-side list node.
pub struct ListNode {
    value: i32,
    next: Mutex<Option<Arc<ListNode>>>,
}

impl ListNode {
    /// Builds a chain holding `values`; returns the head.
    ///
    /// # Panics
    ///
    /// Panics when `values` is empty.
    pub fn chain(values: &[i32]) -> Arc<ListNode> {
        assert!(!values.is_empty(), "a list needs at least one node");
        let mut iter = values.iter().rev();
        let mut node = Arc::new(ListNode {
            value: *iter.next().expect("nonempty"),
            next: Mutex::new(None),
        });
        for &value in iter {
            node = Arc::new(ListNode {
                value,
                next: Mutex::new(Some(node)),
            });
        }
        node
    }
}

impl RemoteList for ListNode {
    fn next(&self) -> Result<Arc<dyn RemoteList>, RemoteError> {
        self.next
            .lock()
            .clone()
            .map(|node| node as Arc<dyn RemoteList>)
            .ok_or_else(|| RemoteError::application("EndOfListException", "reached the tail"))
    }

    fn get_value(&self) -> Result<i32, RemoteError> {
        Ok(self.value)
    }
}

/// RMI traversal: `n` `next()` calls plus one `get_value()` —
/// `n + 1` round trips.
///
/// # Errors
///
/// `EndOfListException` when the chain is shorter than `n`.
pub fn rmi_nth_value(head: &RemoteListStub, n: usize) -> Result<i32, RemoteError> {
    let mut current = head.clone();
    for _ in 0..n {
        current = current.next()?;
    }
    current.get_value()
}

/// BRMI traversal in a single batch: one round trip regardless of `n`.
///
/// # Errors
///
/// Communication failures at `flush`; `EndOfListException` re-thrown from
/// the future when the chain is too short.
pub fn brmi_nth_value(conn: &Connection, head: &RemoteRef, n: usize) -> Result<i32, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let mut current = BRemoteList::new(&batch, head);
    for _ in 0..n {
        current = current.next();
    }
    let value = current.get_value();
    batch.flush()?;
    value.get()
}

/// BRMI traversal with batch size 1 (Figure 9): `flush_and_continue`
/// after every recorded call, so each hop is its own round trip — yet no
/// remote result ever crosses the wire.
///
/// # Errors
///
/// As for [`brmi_nth_value`].
pub fn brmi_nth_value_unbatched(
    conn: &Connection,
    head: &RemoteRef,
    n: usize,
) -> Result<i32, RemoteError> {
    let batch = Batch::new(conn.clone(), AbortPolicy);
    let mut current = BRemoteList::new(&batch, head);
    for _ in 0..n {
        current = current.next();
        batch.flush_and_continue()?;
        current.ok()?;
    }
    let value = current.get_value();
    batch.flush()?;
    value.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::AppRig;

    fn rig(values: &[i32]) -> AppRig {
        AppRig::serve(
            "list",
            RemoteListSkeleton::remote_arc(ListNode::chain(values)),
        )
    }

    #[test]
    fn all_three_clients_agree() {
        let rig = rig(&[10, 20, 30, 40, 50]);
        for n in 0..5 {
            let rmi = rmi_nth_value(&RemoteListStub::new(rig.root.clone()), n).unwrap();
            let single = brmi_nth_value(&rig.conn, &rig.root, n).unwrap();
            let unbatched = brmi_nth_value_unbatched(&rig.conn, &rig.root, n).unwrap();
            assert_eq!(rmi, single);
            assert_eq!(rmi, unbatched);
            assert_eq!(rmi, 10 * (n as i32 + 1));
        }
    }

    #[test]
    fn round_trip_counts_match_the_paper() {
        let rig = rig(&[1, 2, 3, 4, 5, 6]);
        let n = 5;

        rig.stats.reset();
        rmi_nth_value(&RemoteListStub::new(rig.root.clone()), n).unwrap();
        assert_eq!(rig.stats.requests(), n as u64 + 1, "RMI: n+1 trips");

        rig.stats.reset();
        brmi_nth_value(&rig.conn, &rig.root, n).unwrap();
        assert_eq!(rig.stats.requests(), 1, "BRMI: one trip");

        rig.stats.reset();
        brmi_nth_value_unbatched(&rig.conn, &rig.root, n).unwrap();
        assert_eq!(
            rig.stats.requests(),
            n as u64 + 1,
            "unbatched BRMI: n+1 trips of batch size 1"
        );
    }

    #[test]
    fn traversal_past_the_tail_fails_identically() {
        let rig = rig(&[1, 2]);
        let rmi = rmi_nth_value(&RemoteListStub::new(rig.root.clone()), 5).unwrap_err();
        let brmi = brmi_nth_value(&rig.conn, &rig.root, 5).unwrap_err();
        let unbatched = brmi_nth_value_unbatched(&rig.conn, &rig.root, 5).unwrap_err();
        assert_eq!(rmi.exception(), "EndOfListException");
        assert_eq!(brmi.exception(), rmi.exception());
        assert_eq!(unbatched.exception(), rmi.exception());
    }

    #[test]
    fn rmi_exports_grow_with_traversal_but_brmi_do_not() {
        let rig = rig(&[1, 2, 3, 4]);
        let before = rig.server.table().len();
        rmi_nth_value(&RemoteListStub::new(rig.root.clone()), 3).unwrap();
        assert_eq!(rig.server.table().len(), before + 3, "RMI exports per hop");

        let before = rig.server.table().len();
        brmi_nth_value(&rig.conn, &rig.root, 3).unwrap();
        assert_eq!(rig.server.table().len(), before, "BRMI exports nothing");
    }
}
