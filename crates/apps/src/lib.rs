//! # brmi-apps
//!
//! The BRMI paper's case-study applications and micro-benchmark services,
//! re-implemented in Rust (paper Sections 5.1 and 5.3):
//!
//! * [`fileserver`] — the Remote File Server running example and macro
//!   benchmark: directory listings, bulk fetches, delete-by-date.
//! * [`bank`] — credit-card management with the custom exception policy.
//! * [`translator`] — a one-word-at-a-time service batched dynamically.
//! * [`list`] — linked-list traversal (Figures 7–9).
//! * [`simulation`] — the Simulation/Balancer identity benchmark
//!   (Figures 10–11).
//! * [`noop`] — the no-op overhead benchmark (Figures 5–6).
//! * [`implicit_clients`] — the same workloads driven through the
//!   implicit-batching baseline ([`brmi_implicit`]), quantifying the
//!   paper's related-work comparison.
//! * [`durable`] — the durable-origin stress workload: the keyed no-op
//!   load against a journaled origin vs its in-memory twin, plus a
//!   recovery replay of the same directory, with deterministic
//!   append/fsync/replay counts for the committed bench baseline.
//! * [`stress`] — the many-client stress workload: N pooled clients ×
//!   pipelined batches against one reactor server, with deterministic
//!   count/byte outputs for the committed bench baseline.
//! * [`relay`] — the multi-tier topology on top of `stress`: the same
//!   clients behind an edge [`BatchRelay`](brmi_transport::relay::BatchRelay)
//!   that coalesces their batches into origin super-batches.
//! * [`overload`] — the admission-control workloads: thousands of offered
//!   connections against a capped reactor (every overflow client reads an
//!   error-coded shed reply), the bounded-queue saturation model, and the
//!   adaptive relay-window convergence sweep.
//!
//! Every application ships an RMI client and a BRMI client with identical
//! observable behaviour; the unit tests in each module are differential
//! tests asserting exactly that, plus the paper's round-trip counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod durable;
pub mod fetcher;
pub mod fileserver;
pub mod implicit_clients;
pub mod list;
pub mod noop;
#[cfg(target_os = "linux")]
pub mod overload;
#[cfg(target_os = "linux")]
pub mod relay;
pub mod simulation;
#[cfg(target_os = "linux")]
pub mod stress;
pub mod testkit;
pub mod translator;
