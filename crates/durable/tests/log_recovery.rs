//! Crash-recovery tests for the segmented log itself: for a known
//! workload, enumerate EVERY byte-boundary crash site and prove the
//! durability contract — committed records always survive, recovery
//! truncates at the first torn record, and nothing intact-and-committed
//! is ever lost.

use std::sync::Arc;

use brmi_durable::{CrashPoint, Log, LogConfig, TempDir};

fn payload(i: u64) -> Vec<u8> {
    // Variable-length so crash sites land at interesting intra-record
    // offsets (headers, CRC bytes, payload middles).
    let mut p = format!("record-{i}:").into_bytes();
    p.extend(std::iter::repeat_n(b'x', (i % 7) as usize * 3));
    p
}

/// Runs the canonical workload against a log armed with `crash`,
/// stopping at the first injected failure. Returns the number of records
/// whose commit RETURNED (i.e. the durable horizon the caller observed).
fn run_workload(log: &Log, records: u64) -> u64 {
    let mut acked = 0;
    for i in 0..records {
        match log.append_durable(&payload(i)) {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    acked
}

#[test]
fn every_crash_site_preserves_acked_records_and_truncates_the_tail() {
    const RECORDS: u64 = 12;
    // First, a crash-free run to learn the workload's total byte span.
    let clean = TempDir::new("site-span");
    let (log, _) = Log::open(clean.path(), LogConfig::default()).expect("open");
    assert_eq!(run_workload(&log, RECORDS), RECORDS);
    let total_bytes = log.stats().bytes;
    drop(log);

    for site in 0..=total_bytes {
        let dir = TempDir::new("site");
        let point = CrashPoint::at_byte(site);
        let (log, _) =
            Log::open_with(dir.path(), LogConfig::default(), Arc::clone(&point)).expect("open");
        let acked = run_workload(&log, RECORDS);
        drop(log);

        let (log, recovered) = Log::open(dir.path(), LogConfig::default()).expect("recover");
        // Contract: every record whose commit returned must be recovered
        // intact, in order, with the right payload.
        assert!(
            recovered.records.len() as u64 >= acked,
            "site {site}: acked {acked} but recovered only {}",
            recovered.records.len()
        );
        for (i, (lsn, data)) in recovered.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64, "site {site}: lsn order");
            assert_eq!(
                data,
                &payload(i as u64),
                "site {site}: payload at lsn {lsn}"
            );
        }
        // At most one record can be in the unacked gap (append_durable is
        // one record per commit), and recovery must resume appendable.
        assert!(
            recovered.records.len() as u64 <= acked + 1,
            "site {site}: recovered {} records from {acked} acked",
            recovered.records.len()
        );
        let resumed = log.append_durable(b"post-recovery").expect("resume");
        assert_eq!(resumed, recovered.next_lsn);
    }
}

#[test]
fn torn_tail_is_counted_and_physically_truncated() {
    let dir = TempDir::new("torn");
    let (log, _) = Log::open(dir.path(), LogConfig::default()).expect("open");
    for i in 0..4 {
        log.append_durable(&payload(i)).expect("append");
    }
    let durable_bytes = log.stats().bytes;
    // Crash 3 bytes into the next record's frame: a torn header.
    log.arm_crash(CrashPoint::at_byte(3));
    log.append_durable(b"never-acked").expect_err("must crash");
    drop(log);

    let (_, recovered) = Log::open(dir.path(), LogConfig::default()).expect("recover");
    assert_eq!(recovered.records.len(), 4);
    assert_eq!(recovered.truncated_records, 1);
    assert_eq!(recovered.truncated_bytes, 3);
    // The file itself was truncated back to the durable prefix.
    let seg_len: u64 = std::fs::read_dir(dir.path())
        .expect("read dir")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .map(|e| e.metadata().expect("meta").len())
        .sum();
    assert_eq!(seg_len, durable_bytes);
}

#[test]
fn corrupt_record_in_the_middle_truncates_everything_after_it() {
    let dir = TempDir::new("corrupt");
    let (log, _) = Log::open(dir.path(), LogConfig::default()).expect("open");
    for i in 0..6 {
        log.append_durable(&payload(i)).expect("append");
    }
    drop(log);

    // Flip one payload byte of the third record on disk.
    let seg = std::fs::read_dir(dir.path())
        .expect("read dir")
        .flatten()
        .find(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .expect("segment")
        .path();
    let mut bytes = std::fs::read(&seg).expect("read seg");
    let mut offset = 0;
    for _ in 0..2 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        offset += 8 + len;
    }
    bytes[offset + 8] ^= 0xFF;
    std::fs::write(&seg, &bytes).expect("write seg");

    let (_, recovered) = Log::open(dir.path(), LogConfig::default()).expect("recover");
    assert_eq!(
        recovered.records.len(),
        2,
        "corruption at lsn 2 discards lsn 2..6"
    );
    assert!(recovered.truncated_records >= 1);
}

#[test]
fn group_commit_coalesces_fsyncs() {
    let dir = TempDir::new("group");
    let (log, _) = Log::open(dir.path(), LogConfig::default()).expect("open");
    let mut lsns = Vec::new();
    for i in 0..10 {
        lsns.push(log.append(&payload(i)).expect("append"));
    }
    let horizon = log.commit().expect("commit");
    assert_eq!(horizon, 10);
    let after_batch = log.stats().fsyncs;
    assert_eq!(after_batch, 1, "ten appends, one fsync");
    // Followers whose lsn is already durable never touch the disk.
    for lsn in lsns {
        log.commit_through(lsn).expect("commit_through");
    }
    assert_eq!(log.stats().fsyncs, after_batch);
}

#[test]
fn snapshot_compacts_segments_and_recovery_prefers_it() {
    let config = LogConfig {
        segment_bytes: 128,
        ..LogConfig::default()
    };
    let dir = TempDir::new("snap");
    let (log, _) = Log::open(dir.path(), config).expect("open");
    for i in 0..40 {
        log.append_durable(&payload(i)).expect("append");
    }
    let segments_before = log.segment_count();
    assert!(segments_before > 2, "workload must span several segments");

    // Snapshot covering everything so far: all sealed segments collapse.
    let floor = log.durable_lsn();
    log.write_snapshot(floor, b"state-at-40").expect("snapshot");
    assert!(log.segment_count() < segments_before);
    for i in 40..44 {
        log.append_durable(&payload(i)).expect("append");
    }
    drop(log);

    let (log, recovered) = Log::open(dir.path(), config).expect("recover");
    let (snap_lsn, snap_payload) = recovered.snapshot.expect("snapshot survives");
    assert_eq!(snap_lsn, 40);
    assert_eq!(snap_payload, b"state-at-40");
    let lsns: Vec<u64> = recovered.records.iter().map(|(lsn, _)| *lsn).collect();
    assert_eq!(lsns, vec![40, 41, 42, 43], "only post-floor records replay");
    assert_eq!(log.snapshot_floor(), 40);
}

#[test]
fn crash_during_snapshot_write_leaves_the_previous_state_recoverable() {
    let dir = TempDir::new("snap-crash");
    let (log, _) = Log::open(dir.path(), LogConfig::default()).expect("open");
    for i in 0..5 {
        log.append_durable(&payload(i)).expect("append");
    }
    let durable = log.stats().bytes;
    // Crash partway through the snapshot's tmp-file write.
    log.arm_crash(CrashPoint::at_byte(6));
    log.write_snapshot(log.durable_lsn(), b"half-written-snapshot")
        .expect_err("snapshot write must crash");
    drop(log);

    let (_, recovered) = Log::open(dir.path(), LogConfig::default()).expect("recover");
    assert!(
        recovered.snapshot.is_none(),
        "a torn tmp snapshot must be invisible"
    );
    assert_eq!(recovered.records.len(), 5);
    assert_eq!(recovered.truncated_bytes, 0, "log records untouched");
    let _ = durable;
}

#[test]
fn index_serves_random_reads_and_survives_recovery() {
    let dir = TempDir::new("index");
    let (log, _) = Log::open(dir.path(), LogConfig::default()).expect("open");
    for i in 0..8 {
        log.append_durable(&payload(i)).expect("append");
    }
    assert_eq!(log.read(3).expect("read").as_deref(), Some(&payload(3)[..]));
    // Staged-but-uncommitted records are not readable.
    let staged = log.append(b"uncommitted").expect("append");
    assert_eq!(log.read(staged).expect("read"), None);
    log.commit().expect("commit");
    assert_eq!(
        log.read(staged).expect("read").as_deref(),
        Some(&b"uncommitted"[..])
    );
    drop(log);

    let (log, _) = Log::open(dir.path(), LogConfig::default()).expect("recover");
    assert_eq!(log.read(5).expect("read").as_deref(), Some(&payload(5)[..]));
    assert_eq!(log.read(99).expect("read"), None);
}

#[test]
fn reopening_counts_recoveries_and_everything_is_idempotent() {
    let dir = TempDir::new("idem");
    for round in 0..3 {
        let (log, recovered) = Log::open(dir.path(), LogConfig::default()).expect("open");
        assert_eq!(recovered.records.len() as u64, round * 2);
        assert_eq!(log.stats().recoveries, 1, "per-instance counter");
        log.append_durable(&payload(round * 2)).expect("append");
        log.append_durable(&payload(round * 2 + 1)).expect("append");
    }
}

#[test]
fn crashed_log_refuses_every_operation() {
    let dir = TempDir::new("refuse");
    let point = CrashPoint::at_byte(4);
    let (log, _) =
        Log::open_with(dir.path(), LogConfig::default(), Arc::clone(&point)).expect("open");
    log.append_durable(b"long enough to trip")
        .expect_err("crash");
    assert!(log.is_crashed());
    assert!(log.append(b"x").is_err());
    assert!(log.commit().is_err());
    assert!(log.read(0).is_err());
    assert!(log.write_snapshot(0, b"s").is_err());
}
