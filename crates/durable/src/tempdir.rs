//! A self-cleaning temporary directory for durable-state tests and
//! bench rigs.
//!
//! Every test or stress rig that materialises a log on disk routes its
//! path through a [`TempDir`] so that a failed assertion (or any other
//! panic) still removes the directory: the guard's `Drop` runs during
//! unwinding. Paths are process-unique (pid) and call-unique (atomic
//! counter), so parallel test threads never collide — no randomness, in
//! keeping with the workspace's determinism rules.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// An owned temporary directory, recursively deleted on drop (including
/// panic unwinds). See the [module docs](self).
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<system tmp>/brmi-durable-<pid>-<n>-<tag>/`, empty.
    ///
    /// # Panics
    /// If the directory cannot be created — tests want a loud failure,
    /// not a silently relocated log.
    pub fn new(tag: &str) -> TempDir {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("brmi-durable-{}-{}-{}", std::process::id(), n, tag));
        // A leftover from a previous crashed *process* at the same pid is
        // stale by definition; start clean.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    /// The directory's path (exists until the guard drops).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path to `name` inside the directory.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleans_up_on_drop() {
        let kept_path;
        {
            let dir = TempDir::new("drop-check");
            kept_path = dir.path().to_path_buf();
            std::fs::write(dir.join("file.bin"), b"x").expect("write");
            assert!(kept_path.exists());
        }
        assert!(!kept_path.exists(), "guard must remove the tree");
    }

    #[test]
    fn cleans_up_when_a_panic_unwinds() {
        let kept_path = std::sync::Arc::new(std::sync::Mutex::new(None::<PathBuf>));
        let seen = std::sync::Arc::clone(&kept_path);
        let result = std::panic::catch_unwind(move || {
            let dir = TempDir::new("panic-check");
            *seen.lock().expect("lock") = Some(dir.path().to_path_buf());
            panic!("simulated test failure");
        });
        assert!(result.is_err());
        let path = kept_path
            .lock()
            .expect("lock")
            .clone()
            .expect("path captured");
        assert!(!path.exists(), "guard must clean up during unwinding");
    }

    #[test]
    fn parallel_guards_do_not_collide() {
        let a = TempDir::new("same-tag");
        let b = TempDir::new("same-tag");
        assert_ne!(a.path(), b.path());
    }
}
