//! The segmented append-only log.
//!
//! ## On-disk layout
//!
//! A log directory holds three kinds of files:
//!
//! * `seg-<base_lsn:020>.log` — a segment: a run of records whose LSNs
//!   start at `base_lsn` (taken from the filename) and increase by one per
//!   record. Only the highest segment is ever appended to.
//! * `snap-<next_lsn:020>.snap` — a compacted snapshot: one record (same
//!   framing) whose payload captures all state produced by LSNs
//!   `< next_lsn`. Written to a `.tmp` sibling, fsynced, then renamed, so
//!   a snapshot file is either absent or complete.
//! * `*.tmp` — an interrupted snapshot; deleted on open.
//!
//! Every record is framed `[u32 LE payload_len][u32 LE crc32(payload)]
//! [payload]`. Recovery walks segments in LSN order verifying each frame
//! and **truncates at the first torn or corrupt record** (later segments
//! are dropped wholesale): nothing past a bad frame was ever acknowledged
//! as durable, so losing it is correct — and keeping it would risk
//! resurrecting a half-written mutation.
//!
//! ## Commit protocol
//!
//! [`Log::append`] assigns an LSN and stages the framed record in memory;
//! [`Log::commit`] writes *all* staged records with one `write` + one
//! `fsync` (group commit: concurrent appenders that stage before the
//! flusher reaches the file ride the same fsync, and a follower whose LSN
//! is already durable returns without touching the disk).
//! [`Log::append_durable`] is the two fused for callers without batching
//! ambitions.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use brmi_obs::{Counter, Registry};

use crate::crash::CrashPoint;

/// Frame header size: 4-byte length + 4-byte CRC.
const HEADER_BYTES: usize = 8;

/// Tuning knobs for a [`Log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Seal the active segment and start a new one once it holds at least
    /// this many bytes (checked after each commit).
    pub segment_bytes: u64,
    /// Recovery treats any frame announcing a payload larger than this as
    /// corrupt (a torn length field can claim gigabytes).
    pub max_record_bytes: u32,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            segment_bytes: 64 * 1024,
            max_record_bytes: 1 << 26,
        }
    }
}

/// Failures on the log's hot path.
#[derive(Debug)]
pub enum LogError {
    /// A real I/O error from the filesystem.
    Io(std::io::Error),
    /// The armed [`CrashPoint`] has struck: the simulated machine is down
    /// and no further operation will succeed until the log is reopened.
    Crashed,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(err) => write!(f, "durable log I/O error: {err}"),
            LogError::Crashed => write!(f, "durable log crashed (injected power cut)"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(err) => Some(err),
            LogError::Crashed => None,
        }
    }
}

impl From<std::io::Error> for LogError {
    fn from(err: std::io::Error) -> LogError {
        LogError::Io(err)
    }
}

/// What [`Log::open`] found on disk, in replay order.
#[derive(Debug)]
pub struct Recovered {
    /// The newest intact snapshot, as `(next_lsn, payload)`: the payload
    /// captures all effects of LSNs `< next_lsn`.
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Every verified record at or above the snapshot floor, as
    /// `(lsn, payload)`, ascending.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Records discarded because they (or an earlier record) failed
    /// verification — the unacknowledged torn tail.
    pub truncated_records: u64,
    /// Bytes discarded with them.
    pub truncated_bytes: u64,
    /// The LSN the reopened log will assign next.
    pub next_lsn: u64,
}

/// A point-in-time copy of the log's counters (see
/// [`Log::register_metrics`] for the metric names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Records staged via [`Log::append`].
    pub appends: u64,
    /// Payload+frame bytes physically written to segment or snapshot
    /// files.
    pub bytes: u64,
    /// `fsync` calls issued (group commit makes this less than appends
    /// under concurrency).
    pub fsyncs: u64,
    /// Times a log was recovered from this directory.
    pub recoveries: u64,
    /// Torn/corrupt records truncated during recovery.
    pub truncated_records: u64,
    /// Snapshots successfully written.
    pub snapshots: u64,
}

/// Where a durable record lives on disk — the in-memory index entry.
#[derive(Debug, Clone, Copy)]
struct RecordLoc {
    seg_base: u64,
    offset: u64,
    frame_len: u32,
}

/// A record staged by `append` but not yet flushed.
#[derive(Debug, Clone, Copy)]
struct StagedMeta {
    lsn: u64,
    loc: RecordLoc,
}

#[derive(Debug)]
struct SealedSeg {
    base: u64,
    records: u64,
    path: PathBuf,
}

struct Inner {
    dir: PathBuf,
    config: LogConfig,
    crash: Arc<CrashPoint>,
    /// Active segment file, positioned at its end.
    file: File,
    seg_base: u64,
    seg_records: u64,
    seg_bytes: u64,
    sealed: Vec<SealedSeg>,
    /// Framed records awaiting the next commit.
    pending: Vec<u8>,
    pending_meta: Vec<StagedMeta>,
    next_lsn: u64,
    durable_lsn: u64,
    /// `next_lsn` of the latest snapshot (0 when none).
    snapshot_floor: u64,
    /// lsn → location, for every durable record still on disk.
    index: BTreeMap<u64, RecordLoc>,
}

/// A crash-recoverable segmented append-only log. See the [module
/// docs](self) for the format and the [crate docs](crate) for the
/// durability contract.
pub struct Log {
    inner: Mutex<Inner>,
    appends: Counter,
    bytes: Counter,
    fsyncs: Counter,
    recoveries: Counter,
    truncated: Counter,
    snapshots: Counter,
}

impl std::fmt::Debug for Log {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log").finish_non_exhaustive()
    }
}

/// The IEEE CRC-32 (polynomial `0xEDB88320`), bitwise — slow and
/// dependency-free, plenty for journal-sized records.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFF_u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn seg_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("seg-{base:020}.log"))
}

fn snap_path(dir: &Path, next_lsn: u64) -> PathBuf {
    dir.join(format!("snap-{next_lsn:020}.snap"))
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("record payload over 4 GiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Parses one frame at `buf[offset..]`. `Ok(Some(payload_range))` on a
/// verified record, `Ok(None)` for a clean end exactly at the buffer's
/// end, `Err(())` on a torn or corrupt frame.
#[allow(clippy::result_unit_err)]
fn parse_frame(
    buf: &[u8],
    offset: usize,
    max_record_bytes: u32,
) -> Result<Option<std::ops::Range<usize>>, ()> {
    if offset == buf.len() {
        return Ok(None);
    }
    if buf.len() - offset < HEADER_BYTES {
        return Err(());
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(buf[offset + 4..offset + 8].try_into().expect("4 bytes"));
    if len > max_record_bytes {
        return Err(());
    }
    let len = len as usize;
    let start = offset + HEADER_BYTES;
    if buf.len() - start < len {
        return Err(());
    }
    if crc32(&buf[start..start + len]) != crc {
        return Err(());
    }
    Ok(Some(start..start + len))
}

impl Log {
    /// Opens (creating if absent) the log in `dir` and recovers whatever
    /// survives there. Equivalent to [`Log::open_with`] armed with a
    /// [`CrashPoint`] that never fires.
    pub fn open(dir: impl AsRef<Path>, config: LogConfig) -> Result<(Log, Recovered), LogError> {
        Log::open_with(dir, config, CrashPoint::never())
    }

    /// Opens the log with an explicit crash point armed on its write
    /// path. Recovery itself only reads, so it cannot trip the point.
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: LogConfig,
        crash: Arc<CrashPoint>,
    ) -> Result<(Log, Recovered), LogError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let mut seg_bases: Vec<u64> = Vec::new();
        let mut snap_lsns: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            } else if let Some(base) = parse_numbered(name, "seg-", ".log") {
                seg_bases.push(base);
            } else if let Some(lsn) = parse_numbered(name, "snap-", ".snap") {
                snap_lsns.push(lsn);
            }
        }
        seg_bases.sort_unstable();
        snap_lsns.sort_unstable();

        // Newest intact snapshot wins; corrupt candidates are removed and
        // the scan falls back to the next-newest.
        let mut snapshot: Option<(u64, Vec<u8>)> = None;
        for &lsn in snap_lsns.iter().rev() {
            let path = snap_path(&dir, lsn);
            let buf = fs::read(&path)?;
            match parse_frame(&buf, 0, config.max_record_bytes) {
                Ok(Some(range)) if range.end == buf.len() => {
                    snapshot = Some((lsn, buf[range].to_vec()));
                    break;
                }
                _ => {
                    let _ = fs::remove_file(&path);
                }
            }
        }
        let snapshot_floor = snapshot.as_ref().map_or(0, |(lsn, _)| *lsn);

        let mut records: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut index: BTreeMap<u64, RecordLoc> = BTreeMap::new();
        let mut sealed: Vec<SealedSeg> = Vec::new();
        let mut truncated_records = 0_u64;
        let mut truncated_bytes = 0_u64;
        let mut torn = false;
        // (base, kept records, kept bytes) of the last surviving segment.
        let mut tail: Option<(u64, u64, u64)> = None;

        for (pos, &base) in seg_bases.iter().enumerate() {
            let path = seg_path(&dir, base);
            if torn {
                // Everything after the first bad record is unacknowledged
                // tail: drop whole later segments.
                truncated_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                truncated_records += count_records(&path, config.max_record_bytes);
                let _ = fs::remove_file(&path);
                continue;
            }
            let buf = fs::read(&path)?;
            let mut offset = 0_usize;
            let mut kept = 0_u64;
            loop {
                match parse_frame(&buf, offset, config.max_record_bytes) {
                    Ok(None) => break,
                    Ok(Some(range)) => {
                        let lsn = base + kept;
                        let loc = RecordLoc {
                            seg_base: base,
                            offset: offset as u64,
                            frame_len: (HEADER_BYTES + range.len()) as u32,
                        };
                        index.insert(lsn, loc);
                        if lsn >= snapshot_floor {
                            records.push((lsn, buf[range.clone()].to_vec()));
                        }
                        offset = range.end;
                        kept += 1;
                    }
                    Err(()) => {
                        torn = true;
                        truncated_records += 1;
                        truncated_bytes += (buf.len() - offset) as u64;
                        let file = OpenOptions::new().write(true).open(&path)?;
                        file.set_len(offset as u64)?;
                        file.sync_data()?;
                        break;
                    }
                }
            }
            if pos == seg_bases.len() - 1 || torn {
                tail = Some((base, kept, offset as u64));
            } else {
                sealed.push(SealedSeg {
                    base,
                    records: kept,
                    path,
                });
            }
        }

        let (seg_base, seg_records, seg_bytes, file) = match tail {
            Some((base, kept, bytes)) => {
                let mut file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .open(seg_path(&dir, base))?;
                file.seek(SeekFrom::End(0))?;
                (base, kept, bytes, file)
            }
            None => {
                let base = snapshot_floor;
                let file = OpenOptions::new()
                    .create(true)
                    .truncate(true)
                    .write(true)
                    .read(true)
                    .open(seg_path(&dir, base))?;
                (base, 0, 0, file)
            }
        };
        let next_lsn = (seg_base + seg_records).max(snapshot_floor);

        let log = Log {
            inner: Mutex::new(Inner {
                dir,
                config,
                crash,
                file,
                seg_base,
                seg_records,
                seg_bytes,
                sealed,
                pending: Vec::new(),
                pending_meta: Vec::new(),
                next_lsn,
                durable_lsn: next_lsn,
                snapshot_floor,
                index,
            }),
            appends: Counter::new(),
            bytes: Counter::new(),
            fsyncs: Counter::new(),
            recoveries: Counter::new(),
            truncated: Counter::new(),
            snapshots: Counter::new(),
        };
        log.recoveries.inc();
        log.truncated.add(truncated_records);
        let recovered = Recovered {
            snapshot,
            records,
            truncated_records,
            truncated_bytes,
            next_lsn,
        };
        Ok((log, recovered))
    }

    /// Stages `payload` as the next record and returns its LSN. The
    /// record is **not durable** until a [`Log::commit`] (or
    /// [`Log::append_durable`]) covering that LSN returns.
    pub fn append(&self, payload: &[u8]) -> Result<u64, LogError> {
        let mut g = self.lock();
        if g.crash.is_crashed() {
            return Err(LogError::Crashed);
        }
        let lsn = g.next_lsn;
        g.next_lsn += 1;
        let offset = g.seg_bytes + g.pending.len() as u64;
        let before = g.pending.len();
        frame_record(&mut g.pending, payload);
        let frame_len = (g.pending.len() - before) as u32;
        let seg_base = g.seg_base;
        g.pending_meta.push(StagedMeta {
            lsn,
            loc: RecordLoc {
                seg_base,
                offset,
                frame_len,
            },
        });
        self.appends.inc();
        Ok(lsn)
    }

    /// Group commit: flushes every staged record with one write and one
    /// fsync, then returns the new durable LSN horizon (all LSNs below it
    /// are durable). A no-op when nothing is pending.
    pub fn commit(&self) -> Result<u64, LogError> {
        let mut g = self.lock();
        self.flush_locked(&mut g)?;
        Ok(g.durable_lsn)
    }

    /// Makes `lsn` durable; returns immediately if a concurrent committer
    /// already flushed past it (the group-commit fast path).
    pub fn commit_through(&self, lsn: u64) -> Result<(), LogError> {
        let mut g = self.lock();
        if g.durable_lsn > lsn {
            return Ok(());
        }
        self.flush_locked(&mut g)
    }

    /// [`Log::append`] + [`Log::commit_through`] fused: returns once the
    /// record (and everything staged before it) is durable.
    pub fn append_durable(&self, payload: &[u8]) -> Result<u64, LogError> {
        let lsn = self.append(payload)?;
        self.commit_through(lsn)?;
        Ok(lsn)
    }

    /// Writes a compacted snapshot claiming to capture all effects of
    /// LSNs `< next_lsn`, then garbage-collects segments (and older
    /// snapshots) fully covered by it. Pending records are committed
    /// first so the claim can only cover durable history.
    pub fn write_snapshot(&self, next_lsn: u64, payload: &[u8]) -> Result<(), LogError> {
        let mut g = self.lock();
        self.flush_locked(&mut g)?;
        assert!(
            next_lsn <= g.durable_lsn,
            "snapshot claims undurable lsn {} (durable horizon {})",
            next_lsn,
            g.durable_lsn
        );
        if g.crash.is_crashed() {
            return Err(LogError::Crashed);
        }

        // Frame, write to a .tmp sibling, fsync, rename: the final file
        // is either absent or complete.
        let mut framed = Vec::with_capacity(HEADER_BYTES + payload.len());
        frame_record(&mut framed, payload);
        let final_path = snap_path(&g.dir, next_lsn);
        let tmp_path = final_path.with_extension("snap.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            self.write_crashing(&g.crash, &mut tmp, &framed)?;
            if g.crash.is_crashed() {
                return Err(LogError::Crashed);
            }
            tmp.sync_data()?;
            self.fsyncs.inc();
        }
        fs::rename(&tmp_path, &final_path)?;
        self.sync_dir(&g.dir)?;
        self.snapshots.inc();
        g.snapshot_floor = g.snapshot_floor.max(next_lsn);

        // Seal the active segment so future appends land past the floor
        // and the GC below can eventually reclaim it.
        if g.seg_records > 0 {
            self.rotate_locked(&mut g)?;
        }

        // Reclaim segments whose every record the snapshot covers, and
        // superseded snapshots.
        let floor = g.snapshot_floor;
        let mut kept = Vec::new();
        for seg in std::mem::take(&mut g.sealed) {
            if seg.base + seg.records <= floor {
                let _ = fs::remove_file(&seg.path);
                let end = seg.base + seg.records;
                let stale: Vec<u64> = g.index.range(seg.base..end).map(|(lsn, _)| *lsn).collect();
                for lsn in stale {
                    g.index.remove(&lsn);
                }
            } else {
                kept.push(seg);
            }
        }
        g.sealed = kept;
        for entry in fs::read_dir(&g.dir)?.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(lsn) = parse_numbered(name, "snap-", ".snap") {
                if lsn < floor {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(())
    }

    /// Random-access read of a durable record through the in-memory
    /// index. Staged-but-uncommitted LSNs and LSNs reclaimed by snapshot
    /// GC return `None`.
    pub fn read(&self, lsn: u64) -> Result<Option<Vec<u8>>, LogError> {
        let g = self.lock();
        if g.crash.is_crashed() {
            return Err(LogError::Crashed);
        }
        let Some(loc) = g.index.get(&lsn).copied() else {
            return Ok(None);
        };
        let mut file = File::open(seg_path(&g.dir, loc.seg_base))?;
        file.seek(SeekFrom::Start(loc.offset))?;
        let mut frame = vec![0_u8; loc.frame_len as usize];
        file.read_exact(&mut frame)?;
        match parse_frame(&frame, 0, g.config.max_record_bytes) {
            Ok(Some(range)) => Ok(Some(frame[range].to_vec())),
            _ => Err(LogError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("indexed record at lsn {lsn} failed verification"),
            ))),
        }
    }

    /// The LSN the next [`Log::append`] will receive.
    pub fn next_lsn(&self) -> u64 {
        self.lock().next_lsn
    }

    /// All LSNs below this horizon are durable.
    pub fn durable_lsn(&self) -> u64 {
        self.lock().durable_lsn
    }

    /// `next_lsn` of the newest snapshot (0 when none exists).
    pub fn snapshot_floor(&self) -> u64 {
        self.lock().snapshot_floor
    }

    /// Number of segment files currently on disk (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.lock().sealed.len() + 1
    }

    /// Replaces the armed crash point (tests arm a fresh one per run on a
    /// log opened crash-free).
    pub fn arm_crash(&self, point: Arc<CrashPoint>) {
        self.lock().crash = point;
    }

    /// True once the armed crash point has struck.
    pub fn is_crashed(&self) -> bool {
        self.lock().crash.is_crashed()
    }

    /// A point-in-time copy of the log's counters.
    pub fn stats(&self) -> LogStats {
        LogStats {
            appends: self.appends.value(),
            bytes: self.bytes.value(),
            fsyncs: self.fsyncs.value(),
            recoveries: self.recoveries.value(),
            truncated_records: self.truncated.value(),
            snapshots: self.snapshots.value(),
        }
    }

    /// Registers the log's counters with `registry` under the `durable_*`
    /// families: `durable_appends`, `durable_bytes`, `durable_fsyncs`,
    /// `durable_recoveries`, `durable_truncated_records`,
    /// `durable_snapshots`.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter("durable_appends", &[], &self.appends);
        registry.register_counter("durable_bytes", &[], &self.bytes);
        registry.register_counter("durable_fsyncs", &[], &self.fsyncs);
        registry.register_counter("durable_recoveries", &[], &self.recoveries);
        registry.register_counter("durable_truncated_records", &[], &self.truncated);
        registry.register_counter("durable_snapshots", &[], &self.snapshots);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("durable log poisoned")
    }

    /// Writes `buf` through the crash point: a struck budget cuts the
    /// write short at the exact admitted byte (the torn tail a power cut
    /// leaves) and reports [`LogError::Crashed`].
    fn write_crashing(
        &self,
        crash: &CrashPoint,
        file: &mut File,
        buf: &[u8],
    ) -> Result<(), LogError> {
        let admitted = crash.admit(buf.len());
        if admitted > 0 {
            file.write_all(&buf[..admitted])?;
            self.bytes.add(admitted as u64);
        }
        if admitted < buf.len() {
            // Persist the torn prefix the way a dying kernel might, so
            // recovery faces the worst case rather than a clean cut.
            let _ = file.sync_data();
            return Err(LogError::Crashed);
        }
        Ok(())
    }

    fn flush_locked(&self, g: &mut Inner) -> Result<(), LogError> {
        if g.crash.is_crashed() {
            return Err(LogError::Crashed);
        }
        if g.pending.is_empty() && g.durable_lsn == g.next_lsn {
            return Ok(());
        }
        if !g.pending.is_empty() {
            let buf = std::mem::take(&mut g.pending);
            let metas = std::mem::take(&mut g.pending_meta);
            let crash = Arc::clone(&g.crash);
            let written = buf.len() as u64;
            self.write_crashing(&crash, &mut g.file, &buf)?;
            g.seg_bytes += written;
            g.seg_records += metas.len() as u64;
            for meta in metas {
                g.index.insert(meta.lsn, meta.loc);
            }
        }
        g.file.sync_data()?;
        self.fsyncs.inc();
        g.durable_lsn = g.next_lsn;
        if g.seg_bytes >= g.config.segment_bytes {
            self.rotate_locked(g)?;
        }
        Ok(())
    }

    /// Seals the active segment (already fsynced by the caller) and
    /// starts a fresh one based at the next LSN.
    fn rotate_locked(&self, g: &mut Inner) -> Result<(), LogError> {
        if g.crash.is_crashed() {
            return Err(LogError::Crashed);
        }
        debug_assert!(g.pending.is_empty(), "rotate with staged records");
        let new_base = g.next_lsn;
        let new_file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .read(true)
            .open(seg_path(&g.dir, new_base))?;
        self.sync_dir(&g.dir)?;
        let old = std::mem::replace(&mut g.file, new_file);
        drop(old);
        let sealed = SealedSeg {
            base: g.seg_base,
            records: g.seg_records,
            path: seg_path(&g.dir, g.seg_base),
        };
        g.sealed.push(sealed);
        g.seg_base = new_base;
        g.seg_records = 0;
        g.seg_bytes = 0;
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<(), LogError> {
        // Directory fsync so renames/creates survive the cut too; best
        // effort on filesystems that refuse to open directories.
        if let Ok(handle) = File::open(dir) {
            let _ = handle.sync_data();
        }
        Ok(())
    }
}

/// Best-effort record count of a segment being discarded wholesale (used
/// only for the recovery report's truncation tally).
fn count_records(path: &Path, max_record_bytes: u32) -> u64 {
    let Ok(buf) = fs::read(path) else { return 0 };
    let mut offset = 0_usize;
    let mut count = 0_u64;
    loop {
        match parse_frame(&buf, offset, max_record_bytes) {
            Ok(Some(range)) => {
                offset = range.end;
                count += 1;
            }
            Ok(None) => break,
            Err(()) => {
                count += 1;
                break;
            }
        }
    }
    count
}
