//! # brmi-durable
//!
//! The persistence substrate behind the origin's crash recoverability: a
//! **segmented append-only log** with length-prefixed, CRC-stamped records,
//! group-commit batched appends, compacting snapshots, and a recovery scan
//! that truncates at the first torn or corrupt record — in the spirit of
//! sapling's `lib/indexedlog`, sized for this middleware.
//!
//! The design contract, in one paragraph: a record handed to
//! [`Log::append`] is *durable* once [`Log::commit`] (or
//! [`Log::append_durable`]) returns — the bytes and everything appended
//! before them survive a power cut. Nothing else is promised: a crash may
//! tear the uncommitted tail at **any byte boundary**, including the middle
//! of a record header. [`Log::open`] recovers exactly the durable prefix:
//! it verifies each record's length and CRC in order and truncates the log
//! at the first record that fails, because nothing after a torn record was
//! ever acknowledged.
//!
//! Crashes are simulated, deterministically, with [`CrashPoint`]: a byte
//! budget armed on the log's write path. When the budget runs out
//! mid-write the remaining bytes of that write are discarded (a torn
//! partial write, exactly what a power cut leaves behind) and every later
//! operation fails with [`LogError::Crashed`] — the process-local stand-in
//! for the machine being gone. Tests arm a point, run a workload until it
//! strikes, then reopen the directory and assert the recovered state.
//!
//! Metrics: [`Log::register_metrics`] exposes the `durable_*` counter
//! families (`durable_appends`, `durable_bytes`, `durable_fsyncs`,
//! `durable_recoveries`, `durable_truncated_records`, plus
//! `durable_snapshots`).
//!
//! [`TempDir`] is the workspace's tempdir guard: every test and bench rig
//! that creates durable state routes its paths through one so an assert or
//! panic never leaves stray files behind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crash;
pub mod log;
pub mod tempdir;

pub use crash::CrashPoint;
pub use log::{Log, LogConfig, LogError, LogStats, Recovered};
pub use tempdir::TempDir;
