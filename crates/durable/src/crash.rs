//! Deterministic crash-point fault injection for the durable log.
//!
//! A [`CrashPoint`] is a byte budget armed on a [`Log`](crate::Log)'s
//! physical write path. Every byte the log writes draws the budget down;
//! the write during which it reaches zero is cut short at exactly that
//! byte — a torn partial write, the same artifact a power cut leaves on a
//! real disk — and the point flips to *crashed*. From then on every log
//! operation fails with [`LogError::Crashed`](crate::LogError::Crashed),
//! modelling the rest of the machine being gone; the test harness then
//! reopens the directory as the restarted process and asserts on what
//! recovery rebuilt.
//!
//! Budgets are plain numbers, so tests can enumerate *every* injection
//! site of a known workload (`0..total_bytes`) or sample sites from a
//! seed with [`CrashPoint::seeded`] — both perfectly reproducible.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// A one-shot, byte-granular power-cut trigger — see the [module
/// docs](self).
#[derive(Debug)]
pub struct CrashPoint {
    /// Bytes still allowed through the write path. Negative once struck.
    budget: AtomicI64,
    crashed: AtomicBool,
}

impl CrashPoint {
    /// A point that never fires (the budget is effectively infinite).
    pub fn never() -> Arc<CrashPoint> {
        CrashPoint::at_byte(u64::MAX / 2)
    }

    /// Arms a crash after exactly `n` more bytes reach the log's write
    /// path. `n = 0` kills the very first write outright; a value inside
    /// a record's on-disk span produces a torn record.
    pub fn at_byte(n: u64) -> Arc<CrashPoint> {
        Arc::new(CrashPoint {
            budget: AtomicI64::new(i64::try_from(n).unwrap_or(i64::MAX)),
            crashed: AtomicBool::new(false),
        })
    }

    /// Derives a crash byte in `[0, span_bytes)` from `seed`
    /// (deterministically — same seed, same site) and arms it. Returns the
    /// point and the chosen offset, so failures can name the site.
    pub fn seeded(seed: u64, span_bytes: u64) -> (Arc<CrashPoint>, u64) {
        let offset = if span_bytes == 0 {
            0
        } else {
            splitmix64(seed) % span_bytes
        };
        (CrashPoint::at_byte(offset), offset)
    }

    /// True once the point has struck (or [`CrashPoint::kill`] was called):
    /// the simulated machine is down and every log operation fails.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Trips the point immediately, without waiting for the byte budget —
    /// an operator-initiated `kill -9` rather than a power cut.
    pub fn kill(&self) {
        self.crashed.store(true, Ordering::SeqCst);
    }

    /// Draws `want` bytes from the budget. Returns how many of them may
    /// actually be written: `want` while the budget holds, a partial count
    /// (possibly zero) on the write that exhausts it. Once struck, always
    /// zero.
    pub(crate) fn admit(&self, want: usize) -> usize {
        if self.is_crashed() {
            return 0;
        }
        let want_i = i64::try_from(want).unwrap_or(i64::MAX);
        let before = self.budget.fetch_sub(want_i, Ordering::SeqCst);
        if before >= want_i {
            return want;
        }
        // This write crosses the budget boundary: allow the remainder (if
        // any) and declare the machine dead.
        self.crashed.store(true, Ordering::SeqCst);
        usize::try_from(before.max(0)).unwrap_or(0)
    }
}

/// The standard splitmix64 mix — a tiny, high-quality seed expander.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_admits_then_tears_then_refuses() {
        let point = CrashPoint::at_byte(10);
        assert_eq!(point.admit(6), 6);
        assert!(!point.is_crashed());
        // 4 budget bytes remain: a 7-byte write is torn to 4.
        assert_eq!(point.admit(7), 4);
        assert!(point.is_crashed());
        assert_eq!(point.admit(1), 0, "dead machines write nothing");
    }

    #[test]
    fn zero_budget_kills_the_first_write() {
        let point = CrashPoint::at_byte(0);
        assert_eq!(point.admit(5), 0);
        assert!(point.is_crashed());
    }

    #[test]
    fn never_does_not_fire() {
        let point = CrashPoint::never();
        for _ in 0..1000 {
            assert_eq!(point.admit(1 << 20), 1 << 20);
        }
        assert!(!point.is_crashed());
    }

    #[test]
    fn kill_is_immediate() {
        let point = CrashPoint::at_byte(1 << 30);
        point.kill();
        assert!(point.is_crashed());
        assert_eq!(point.admit(1), 0);
    }

    #[test]
    fn seeded_sites_are_deterministic_and_in_range() {
        let (_, a) = CrashPoint::seeded(42, 1000);
        let (_, b) = CrashPoint::seeded(42, 1000);
        assert_eq!(a, b);
        for seed in 0..64 {
            let (_, site) = CrashPoint::seeded(seed, 1000);
            assert!(site < 1000);
        }
        // The sites actually spread over the span.
        let distinct: std::collections::HashSet<u64> =
            (0..64).map(|s| CrashPoint::seeded(s, 1000).1).collect();
        assert!(distinct.len() > 32);
    }
}
