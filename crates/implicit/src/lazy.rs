//! Demand-driven values: forcing one flushes the delayed-call queue.

use brmi::BatchFuture;
use brmi_wire::{FromValue, RemoteError};

use crate::runtime::ImplicitRuntime;

/// A delayed remote result.
///
/// Unlike a raw [`BatchFuture`], which errors when read before `flush`,
/// forcing a `Lazy` *causes* the flush — Thor's batched-futures rule: the
/// program never observes that the call was delayed, it only gets faster
/// when it demands values late.
#[derive(Clone)]
pub struct Lazy<T> {
    runtime: ImplicitRuntime,
    future: BatchFuture<T>,
}

impl<T: FromValue> Lazy<T> {
    pub(crate) fn new(runtime: ImplicitRuntime, future: BatchFuture<T>) -> Self {
        Lazy { runtime, future }
    }

    /// Retrieves the value, flushing all delayed calls first if needed.
    ///
    /// # Errors
    ///
    /// * communication failures from the forced flush;
    /// * the call's own exception, or the exception of any delayed call
    ///   before it (the runtime aborts the batch at the first exception
    ///   to preserve RMI semantics);
    /// * marshalling failures converting to `T`.
    pub fn get(&self) -> Result<T, RemoteError> {
        if !self.future.is_done() {
            self.runtime.force()?;
        }
        match self.future.get() {
            Ok(value) => Ok(value),
            Err(err) => {
                // The program now holds the exception: whatever it does
                // next is a deliberate continuation (a caught exception),
                // so the runtime stops discarding new calls.
                self.runtime.observe_failure();
                Err(err)
            }
        }
    }

    /// True once the value (or its error) has been shipped to the client;
    /// forcing a done `Lazy` performs no communication.
    pub fn is_done(&self) -> bool {
        self.future.is_done()
    }
}

impl<T> std::fmt::Debug for Lazy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lazy").finish_non_exhaustive()
    }
}
