//! # brmi-implicit — an implicit-batching baseline for BRMI
//!
//! The paper's related-work section contrasts *explicit* batching (BRMI)
//! with *implicit* batching: Thor's batched futures (Bogle & Liskov),
//! Yeung & Kelly's communication restructuring, and Future-based RMI
//! (Alt & Gorlatch). Those systems delay remote calls transparently and
//! flush the accumulated batch when the program *demands* a value. The
//! paper could compare against them only subjectively ("we do not know
//! of a publicly available implementation of implicit batching for
//! Java"); this crate provides that missing comparator so the benchmark
//! suite can quantify the comparison.
//!
//! ## What it models
//!
//! An [`ImplicitRuntime`] plays the role of the bytecode rewriter /
//! modified runtime of the implicit systems:
//!
//! * remote calls made through batch stubs are **delayed**, not sent;
//! * a [`Lazy<T>`] value stands for a delayed result, and forcing it
//!   ([`Lazy::get`]) flushes every delayed call in one round trip —
//!   Thor's *batched futures* rule;
//! * calls that return remote references chain **without** any flush
//!   (Future-based RMI keeps remote results server-side; this baseline
//!   inherits the same behaviour from the BRMI session machinery);
//! * [`ImplicitRuntime::barrier`] models the *forced flush points* that
//!   the static analyses of implicit systems must insert — entry into an
//!   exception handler, a local side effect that must be ordered with
//!   remote effects, an assignment that escapes the analysis — the exact
//!   situations Section 1 of the paper lists as defeating implicit
//!   batching. Client code in the benchmarks calls `barrier()` precisely
//!   where Yeung & Kelly's analysis would flush, making the baseline's
//!   round-trip count a faithful (in fact slightly optimistic) model.
//!
//! ## What it deliberately cannot do
//!
//! Implicit batching has no analogue of the paper's *array cursors*: a
//! loop over a remote collection demands a value in every iteration, so
//! each iteration costs a round trip. It also cannot express *exception
//! policies*: the server aborts at the first exception (the only
//! semantics-preserving choice, since later delayed calls might never
//! have executed under RMI). The `implicit_vs_explicit` benchmark
//! binary measures both gaps.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use brmi::{remote_interface, BatchExecutor};
//! use brmi_implicit::ImplicitRuntime;
//! use brmi_rmi::{Connection, RmiServer};
//! use brmi_transport::inproc::InProcTransport;
//! use brmi_wire::RemoteError;
//!
//! remote_interface! {
//!     pub interface Counter {
//!         fn increment(by: i32) -> i32;
//!     }
//! }
//!
//! struct State(std::sync::atomic::AtomicI32);
//! impl Counter for State {
//!     fn increment(&self, by: i32) -> Result<i32, RemoteError> {
//!         Ok(self.0.fetch_add(by, std::sync::atomic::Ordering::Relaxed) + by)
//!     }
//! }
//!
//! # fn main() -> Result<(), RemoteError> {
//! let server = RmiServer::new();
//! BatchExecutor::install(&server);
//! server.bind("counter", CounterSkeleton::remote_arc(Arc::new(State(0.into()))))?;
//! let conn = Connection::new(Arc::new(InProcTransport::new(server.clone())));
//!
//! let rt = ImplicitRuntime::new(conn.clone());
//! let counter: BCounter = rt.stub(&conn.lookup("counter")?);
//! let a = rt.lazy(counter.increment(1)); // delayed
//! let b = rt.lazy(counter.increment(2)); // delayed
//! assert_eq!(b.get()?, 3); // forces ONE round trip for both calls
//! assert_eq!(a.get()?, 1); // already resolved, no round trip
//! assert_eq!(rt.round_trips(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lazy;
mod runtime;

pub use lazy::Lazy;
pub use runtime::ImplicitRuntime;
