//! Failure behaviour of the implicit runtime: communication errors
//! surface at the forcing demand (the implicit analogue of "all
//! communication errors surface at flush", paper Section 3.3), and a
//! dead link permanently finishes the runtime.

use std::sync::Arc;

use brmi::{remote_interface, BatchExecutor};
use brmi_implicit::ImplicitRuntime;
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::fault::{FaultPlan, FaultyTransport};
use brmi_transport::inproc::InProcTransport;
use brmi_wire::{RemoteError, RemoteErrorKind};

remote_interface! {
    /// Minimal service.
    pub interface Echo {
        fn echo(v: i32) -> i32;
    }
}

struct Server;

impl Echo for Server {
    fn echo(&self, v: i32) -> Result<i32, RemoteError> {
        Ok(v)
    }
}

fn rig(plan: FaultPlan) -> (Connection, RemoteRef) {
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let id = server
        .bind("echo", EchoSkeleton::remote_arc(Arc::new(Server)))
        .unwrap();
    let transport = FaultyTransport::new(InProcTransport::new(server.clone()), plan);
    let conn = Connection::new(transport);
    let root = conn.reference(id);
    (conn, root)
}

#[test]
fn transport_failure_surfaces_at_the_forcing_demand() {
    let (conn, root) = rig(FaultPlan::OnNth(1));
    let rt = ImplicitRuntime::new(conn);
    let echo: BEcho = rt.stub(&root);
    let a = rt.lazy(echo.echo(1));
    let b = rt.lazy(echo.echo(2));
    // Recording is unaffected; the demand carries the transport error.
    let err = a.get().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Transport);
    // Both futures fail with the same flush error.
    assert_eq!(b.get().unwrap_err().kind(), RemoteErrorKind::Transport);
}

#[test]
fn runtime_is_finished_after_a_transport_failure() {
    let (conn, root) = rig(FaultPlan::OnNth(1));
    let rt = ImplicitRuntime::new(conn);
    let echo: BEcho = rt.stub(&root);
    let doomed = rt.lazy(echo.echo(1));
    assert!(doomed.get().is_err());

    // Later work is refused rather than silently retried: the chain's
    // server state is unknown after a failed flush.
    let late = rt.lazy(echo.echo(2));
    assert_eq!(late.get().unwrap_err().kind(), RemoteErrorKind::Protocol);
    assert!(rt.barrier().is_err());
}

#[test]
fn recovered_link_serves_a_fresh_runtime() {
    let (conn, root) = rig(FaultPlan::FirstN(1));
    let rt = ImplicitRuntime::new(conn.clone());
    let echo: BEcho = rt.stub(&root);
    assert!(rt.lazy(echo.echo(1)).get().is_err());

    // The application-level recovery story: a new runtime on the same
    // (now healthy) connection.
    let rt = ImplicitRuntime::new(conn);
    let echo: BEcho = rt.stub(&root);
    assert_eq!(rt.lazy(echo.echo(7)).get().unwrap(), 7);
    rt.finish().unwrap();
}

#[test]
fn finish_reports_transport_failure_once() {
    let (conn, root) = rig(FaultPlan::Always);
    let rt = ImplicitRuntime::new(conn);
    let echo: BEcho = rt.stub(&root);
    let _pending = rt.lazy(echo.echo(1));
    assert!(rt.finish().is_err(), "the final flush fails");
    assert!(rt.finish().is_ok(), "finish is idempotent afterwards");
}
