//! Property test: for arbitrary programs and arbitrary *demand points*,
//! the implicit runtime never lets the program observe anything plain
//! RMI would not — the transparency requirement that defines implicit
//! batching — and leaves the server in exactly the state RMI leaves it.
//!
//! The demand schedule is part of the generated program: after each call
//! the program may or may not immediately demand the value. Late demands
//! are the degree of freedom an implicit system exploits (they batch
//! more); the invariant is that they must not change semantics.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use brmi::{remote_interface, BatchExecutor};
use brmi_implicit::{ImplicitRuntime, Lazy};
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_wire::RemoteError;
use parking_lot::Mutex;
use proptest::prelude::*;

remote_interface! {
    /// A register bank with failure injection.
    pub interface Bank {
        fn get(index: i32) -> i32;
        fn put(index: i32, v: i32);
        fn fail_if_negative(v: i32) -> i32;
    }
}

struct Registers {
    slots: Mutex<Vec<i32>>,
    executed: AtomicU32,
}

impl Bank for Registers {
    fn get(&self, index: i32) -> Result<i32, RemoteError> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.slots
            .lock()
            .get(index as usize)
            .copied()
            .ok_or_else(|| RemoteError::application("OutOfRange", "no such register"))
    }

    fn put(&self, index: i32, v: i32) -> Result<(), RemoteError> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        match self.slots.lock().get_mut(index as usize) {
            Some(slot) => {
                *slot = v;
                Ok(())
            }
            None => Err(RemoteError::application("OutOfRange", "no such register")),
        }
    }

    fn fail_if_negative(&self, v: i32) -> Result<i32, RemoteError> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if v < 0 {
            Err(RemoteError::application("Negative", "rejected"))
        } else {
            Ok(v)
        }
    }
}

/// One step of a generated client program. `eager` controls the demand
/// schedule under the implicit runtime; under RMI every call is
/// synchronous and `eager` is irrelevant.
#[derive(Debug, Clone)]
enum Step {
    Get { index: i32, eager: bool },
    Put { index: i32, v: i32 },
    Check { v: i32, eager: bool },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..8i32, any::<bool>()).prop_map(|(index, eager)| Step::Get { index, eager }),
        (0..8i32, -50..50i32).prop_map(|(index, v)| Step::Put { index, v }),
        (-3..40i32, any::<bool>()).prop_map(|(v, eager)| Step::Check { v, eager }),
    ]
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Seen {
    Val(i32),
    Unit,
    Error(String),
    /// The program unwound (or discarded the call) before observing it.
    Unreached,
}

fn fresh(values: &[i32]) -> (Connection, RemoteRef, Arc<Registers>) {
    let registers = Arc::new(Registers {
        slots: Mutex::new(values.to_vec()),
        executed: AtomicU32::new(0),
    });
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let id = server
        .bind("bank", BankSkeleton::remote_arc(registers.clone()))
        .expect("bind");
    let conn = Connection::new(Arc::new(InProcTransport::new(server.clone())));
    let root = conn.reference(id);
    (conn, root, registers)
}

/// Sequential RMI execution: every call runs at its program point; the
/// first exception unwinds, leaving the rest unreached.
fn run_rmi(values: &[i32], steps: &[Step]) -> (Vec<Seen>, Vec<i32>, u32) {
    let (_conn, root, registers) = fresh(values);
    let stub = BankStub::new(root);
    let mut seen = vec![Seen::Unreached; steps.len()];
    for (i, step) in steps.iter().enumerate() {
        let outcome = match step {
            Step::Get { index, .. } => stub.get(*index).map(Seen::Val),
            Step::Put { index, v } => stub.put(*index, *v).map(|()| Seen::Unit),
            Step::Check { v, .. } => stub.fail_if_negative(*v).map(Seen::Val),
        };
        match outcome {
            Ok(observed) => seen[i] = observed,
            Err(err) => {
                seen[i] = Seen::Error(err.exception().to_owned());
                break; // uncaught: the program unwinds
            }
        }
    }
    let state = registers.slots.lock().clone();
    let executed = registers.executed.load(Ordering::Relaxed);
    (seen, state, executed)
}

/// The same program under the implicit runtime. Eager steps demand their
/// value immediately; late steps are demanded at program end. The program
/// is exception-oblivious (it never catches), so the first error it
/// *observes* ends it — mirroring the unwinding RMI program.
fn run_implicit(values: &[i32], steps: &[Step]) -> (Vec<Seen>, Vec<i32>, u32) {
    let (conn, root, registers) = fresh(values);
    let rt = ImplicitRuntime::new(conn);
    let bank: BBank = rt.stub(&root);
    let mut seen = vec![Seen::Unreached; steps.len()];
    let mut late_values: Vec<(usize, Lazy<i32>)> = Vec::new();
    let mut late_puts: Vec<(usize, Lazy<()>)> = Vec::new();
    let mut unwound = false;
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Get { index, eager } => {
                let lazy = rt.lazy(bank.get(*index));
                if *eager {
                    match lazy.get() {
                        Ok(v) => seen[i] = Seen::Val(v),
                        Err(e) => {
                            seen[i] = Seen::Error(e.exception().to_owned());
                            unwound = true;
                            break;
                        }
                    }
                } else {
                    late_values.push((i, lazy));
                }
            }
            Step::Check { v, eager } => {
                let lazy = rt.lazy(bank.fail_if_negative(*v));
                if *eager {
                    match lazy.get() {
                        Ok(v) => seen[i] = Seen::Val(v),
                        Err(e) => {
                            seen[i] = Seen::Error(e.exception().to_owned());
                            unwound = true;
                            break;
                        }
                    }
                } else {
                    late_values.push((i, lazy));
                }
            }
            Step::Put { index, v } => {
                late_puts.push((i, rt.lazy(bank.put(*index, *v))));
            }
        }
    }
    // Program end (or unwind): flush/release, then read back every late
    // demand that was actually shipped. After an unwind only the already
    // resolved ones are read — a real unwinding program observes nothing
    // more, but reading the resolved slots lets the property check them
    // against RMI's observations.
    let _ = rt.finish();
    for (i, lazy) in late_puts {
        if unwound && !lazy.is_done() {
            continue;
        }
        seen[i] = match lazy.get() {
            Ok(()) => Seen::Unit,
            Err(e) => Seen::Error(e.exception().to_owned()),
        };
    }
    for (i, lazy) in late_values {
        if unwound && !lazy.is_done() {
            continue;
        }
        seen[i] = match lazy.get() {
            Ok(v) => Seen::Val(v),
            Err(e) => Seen::Error(e.exception().to_owned()),
        };
    }
    let state = registers.slots.lock().clone();
    let executed = registers.executed.load(Ordering::Relaxed);
    (seen, state, executed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Two-part transparency property.
    ///
    /// 1. **Observation agreement**: any step the RMI program reached
    ///    must be observed identically under the implicit runtime.
    ///    (The implicit runtime may know *more*: a late demand after an
    ///    unobserved failure reports the abort cause where RMI simply
    ///    never got there — that is unobservable to a real unwinding
    ///    program, which is gone by then.)
    /// 2. **Server-state agreement**: the registers end identical, i.e.
    ///    the implicit runtime executed exactly the mutations RMI did —
    ///    no speculative call escaped.
    #[test]
    fn implicit_is_transparent(
        values in proptest::collection::vec(-20i32..20, 6..9),
        steps in proptest::collection::vec(arb_step(), 0..20),
    ) {
        let (rmi_seen, rmi_state, rmi_executed) = run_rmi(&values, &steps);
        let (imp_seen, imp_state, imp_executed) = run_implicit(&values, &steps);
        let first_rmi_error = rmi_seen
            .iter()
            .position(|s| matches!(s, Seen::Error(_)));
        for (i, (r, m)) in rmi_seen.iter().zip(&imp_seen).enumerate() {
            match r {
                Seen::Unreached => {}
                // Steps at or before RMI's unwind point (and every step
                // when RMI finished cleanly) must agree exactly...
                reached if first_rmi_error.is_none_or(|e| i <= e) => {
                    prop_assert_eq!(reached, m, "step {}", i);
                }
                // ...steps RMI reached only *after* an error cannot
                // exist (it unwound), so nothing to compare.
                _ => {}
            }
        }
        prop_assert_eq!(rmi_state, imp_state, "server end state");
        // The strongest form of transparency: the server executed
        // *exactly* the same calls — batching changed when calls were
        // shipped, never which calls ran. (Speculative calls recorded
        // after an unobserved failure are discarded, matching RMI's
        // unwinding; abort-on-exception skips the rest of a batch.)
        prop_assert_eq!(rmi_executed, imp_executed, "server-side executions");
    }
}
