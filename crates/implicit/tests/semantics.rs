//! Semantics of the implicit-batching runtime: delaying and batching must
//! never change what the program observes relative to plain RMI — the
//! correctness bar every implicit system in the paper's related work has
//! to clear.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use brmi::{remote_interface, BatchExecutor};
use brmi_implicit::ImplicitRuntime;
use brmi_rmi::{Connection, RemoteRef, RmiServer};
use brmi_transport::inproc::InProcTransport;
use brmi_transport::TransportStats;
use brmi_wire::{RemoteError, RemoteErrorKind};
use parking_lot::Mutex;

remote_interface! {
    /// A cell service: read, write, fail on demand, chain to a sibling.
    pub interface Cell {
        fn read() -> i32;
        fn write(v: i32);
        fn fail(exception: String) -> i32;
        fn sibling() -> remote Cell;
    }
}

struct TestCell {
    value: Mutex<i32>,
    executed: AtomicU32,
    sibling: Mutex<Option<Arc<TestCell>>>,
}

impl TestCell {
    fn new(value: i32) -> Arc<Self> {
        Arc::new(TestCell {
            value: Mutex::new(value),
            executed: AtomicU32::new(0),
            sibling: Mutex::new(None),
        })
    }
}

impl Cell for TestCell {
    fn read(&self) -> Result<i32, RemoteError> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        Ok(*self.value.lock())
    }

    fn write(&self, v: i32) -> Result<(), RemoteError> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        *self.value.lock() = v;
        Ok(())
    }

    fn fail(&self, exception: String) -> Result<i32, RemoteError> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        Err(RemoteError::application(exception, "requested"))
    }

    fn sibling(&self) -> Result<Arc<dyn Cell>, RemoteError> {
        self.executed.fetch_add(1, Ordering::Relaxed);
        self.sibling
            .lock()
            .clone()
            .map(|cell| cell as Arc<dyn Cell>)
            .ok_or_else(|| RemoteError::application("NoSibling", "unset"))
    }
}

struct Rig {
    conn: Connection,
    root: RemoteRef,
    cell: Arc<TestCell>,
    stats: Arc<TransportStats>,
}

fn rig() -> Rig {
    let cell = TestCell::new(10);
    let other = TestCell::new(99);
    *cell.sibling.lock() = Some(other);
    let server = RmiServer::new();
    BatchExecutor::install(&server);
    let id = server
        .bind("cell", CellSkeleton::remote_arc(cell.clone()))
        .expect("bind");
    let transport = InProcTransport::new(server.clone());
    let stats = transport.stats();
    let conn = Connection::new(Arc::new(transport));
    let root = conn.reference(id);
    Rig {
        conn,
        root,
        cell,
        stats,
    }
}

#[test]
fn demand_flushes_everything_delayed_so_far() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    let a = rt.lazy(cell.read());
    cell.write(42);
    let b = rt.lazy(cell.read());
    assert_eq!(rig.cell.executed.load(Ordering::Relaxed), 0, "all delayed");
    assert_eq!(rt.delayed_calls(), 3);

    assert_eq!(b.get().unwrap(), 42, "write was applied in order");
    assert_eq!(a.get().unwrap(), 10, "read before the write saw 10");
    assert_eq!(rt.round_trips(), 1);
    assert_eq!(rig.cell.executed.load(Ordering::Relaxed), 3);
}

#[test]
fn forcing_a_resolved_lazy_is_free() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    let a = rt.lazy(cell.read());
    assert_eq!(a.get().unwrap(), 10);
    rig.stats.reset();
    assert_eq!(a.get().unwrap(), 10);
    assert!(a.is_done());
    assert_eq!(rig.stats.requests(), 0, "no communication on re-demand");
}

#[test]
fn barrier_with_empty_queue_costs_nothing() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    rig.stats.reset();
    rt.barrier().unwrap();
    rt.barrier().unwrap();
    assert_eq!(rig.stats.requests(), 0);
    assert_eq!(rt.round_trips(), 0);
}

#[test]
fn failure_skips_later_delayed_calls_like_rmi_unwinding() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    let ok = rt.lazy(cell.read());
    let boom = rt.lazy(cell.fail("Boom".into()));
    cell.write(77); // delayed after the failure: must never run
    let after = rt.lazy(cell.read());

    assert_eq!(ok.get().unwrap(), 10);
    assert_eq!(boom.get().unwrap_err().exception(), "Boom");
    // Under RMI the exception would have unwound before write/read ran.
    let err = after.get().unwrap_err();
    assert_eq!(err.exception(), "Boom", "skipped with the abort cause");
    assert_eq!(*rig.cell.value.lock(), 10, "the write was not applied");
    assert_eq!(
        rig.cell.executed.load(Ordering::Relaxed),
        2,
        "read + fail executed; write and second read did not"
    );
}

#[test]
fn remote_results_chain_without_round_trips() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    rig.stats.reset();
    let sibling = cell.sibling();
    let value = rt.lazy(sibling.read());
    assert_eq!(rig.stats.requests(), 0, "chaining is free");
    assert_eq!(value.get().unwrap(), 99);
    assert_eq!(rig.stats.requests(), 1);
}

#[test]
fn work_after_a_forced_flush_reuses_the_session() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    let sibling = cell.sibling();
    let first = rt.lazy(sibling.read());
    assert_eq!(first.get().unwrap(), 99);

    // The sibling stub was created before the flush; calls on it after
    // the flush must still resolve (server kept the object alive).
    let second = rt.lazy(sibling.read());
    sibling.write(7);
    let third = rt.lazy(sibling.read());
    assert_eq!(second.get().unwrap(), 99);
    assert_eq!(third.get().unwrap(), 7);
    assert_eq!(rt.round_trips(), 2);
    rt.finish().unwrap();
}

#[test]
fn finish_is_idempotent_and_releases_the_session() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    let sibling = cell.sibling();
    let v = rt.lazy(sibling.read());
    assert_eq!(v.get().unwrap(), 99);
    rt.finish().unwrap();
    let trips = rt.round_trips();
    rt.finish().unwrap();
    assert_eq!(rt.round_trips(), trips, "second finish is a no-op");
}

#[test]
fn demanding_after_finish_reports_a_protocol_error() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    rt.finish().unwrap();
    let late = rt.lazy(cell.read());
    let err = late.get().unwrap_err();
    assert_eq!(err.kind(), RemoteErrorKind::Protocol);
}

#[test]
fn clones_share_the_delayed_queue() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let clone = rt.clone();
    let cell: BCell = rt.stub(&rig.root);
    let a = clone.lazy(cell.read());
    assert_eq!(clone.delayed_calls(), 1);
    assert_eq!(a.get().unwrap(), 10);
    assert_eq!(rt.round_trips(), 1);
    assert_eq!(clone.round_trips(), 1);
}

#[test]
fn debug_formats_are_nonempty() {
    let rig = rig();
    let rt = ImplicitRuntime::new(rig.conn.clone());
    let cell: BCell = rt.stub(&rig.root);
    let lazy = rt.lazy(cell.read());
    assert!(format!("{rt:?}").contains("ImplicitRuntime"));
    assert!(format!("{lazy:?}").contains("Lazy"));
}
